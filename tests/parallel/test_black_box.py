"""Tests for the black-box green→parallel packing construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BlackBoxPar, LatticeError, rand_green_source_factory
from repro.parallel import peak_concurrent_height
from repro.workloads import ParallelWorkload, cyclic, make_parallel_workload, scan


def rng(seed=0):
    return np.random.default_rng(seed)


def simple_workload(p=4, n=120):
    return ParallelWorkload.from_local([cyclic(n, 4 + i) for i in range(p)])


class TestValidation:
    def test_non_power_of_two_cache_accepted(self):
        res = BlackBoxPar(48, 4).run(simple_workload(p=4, n=60))
        assert (res.completion_times > 0).all()
        res.validate()

    def test_invalid_cache_raises_lattice_error(self):
        with pytest.raises(LatticeError) as ei:
            BlackBoxPar(0, 4)
        assert str(ei.value) == "cache size k must be >= 1 (got k=0; nearest valid k is 1)"

    def test_miss_cost(self):
        with pytest.raises(ValueError):
            BlackBoxPar(64, 1)

    def test_cache_too_small(self):
        with pytest.raises(ValueError):
            BlackBoxPar(8, 4).run(simple_workload(p=8))


class TestExecution:
    def test_completes_all(self):
        res = BlackBoxPar(64, 8).run(simple_workload(p=4, n=200))
        assert (res.completion_times > 0).all()
        res.validate()

    def test_deterministic_with_det_green(self):
        wl = simple_workload()
        a = BlackBoxPar(64, 8).run(wl)
        b = BlackBoxPar(64, 8).run(wl)
        assert (a.completion_times == b.completion_times).all()

    def test_capacity_within_budget(self):
        wl = make_parallel_workload(p=8, n_requests=250, k=64, rng=rng(1))
        res = BlackBoxPar(64, 16).run(wl)
        assert peak_concurrent_height(res.trace) <= 64

    def test_green_heights_on_rebooted_lattices(self):
        """Green boxes respect the minimum K/2v̂ threshold of the current
        survivor count (boxes only get taller-or-equal minima as v halves)."""
        locals_ = [cyclic(60 * (i + 1), 4) for i in range(8)]
        wl = ParallelWorkload.from_local(locals_)
        K = 64
        res = BlackBoxPar(K, 8).run(wl)
        green = [r for r in res.trace if r.tag == "green"]
        assert green
        assert all(r.height >= (K // 2) // 8 for r in green)

    def test_fallback_boxes_exist_under_pressure(self):
        """With a big green box hogging capacity, someone gets a fallback."""
        wl = ParallelWorkload.from_local([cyclic(500, 3) for _ in range(8)])
        res = BlackBoxPar(32, 8).run(wl)
        tags = {r.tag for r in res.trace}
        assert tags <= {"green", "fallback"}

    def test_rand_green_source(self):
        wl = simple_workload(p=4, n=100)
        alg = BlackBoxPar(64, 8, source_factory=rand_green_source_factory(seed=3))
        res = alg.run(wl)
        assert (res.completion_times > 0).all()

    def test_no_reboot_variant(self):
        wl = simple_workload(p=4, n=100)
        res = BlackBoxPar(64, 8, reboot=False).run(wl)
        assert (res.completion_times > 0).all()
        assert res.meta["reboot"] is False

    def test_empty_sequences(self):
        wl = ParallelWorkload.from_local([np.empty(0, dtype=np.int64), cyclic(50, 4)])
        res = BlackBoxPar(32, 4).run(wl)
        assert res.completion_times[0] == 0
        assert res.completion_times[1] > 0

    def test_single_processor(self):
        wl = ParallelWorkload.from_local([cyclic(100, 6)])
        res = BlackBoxPar(32, 4).run(wl)
        assert res.completion_times[0] > 0


class TestFairness:
    def test_impact_stays_comparable(self):
        """The packing is 'fair': accumulated impacts of survivors stay
        within an additive slack of one another."""
        p, K, s = 4, 64, 8
        wl = ParallelWorkload.from_local([cyclic(2000, 3) for _ in range(p)])
        res = BlackBoxPar(K, s).run(wl)
        impacts = res.impact_by_proc()
        slack = 2 * s * K * K  # fairness barrier is one full-cache box
        assert impacts.max() - impacts.min() <= slack, impacts


class TestRebootThresholds:
    def test_reboot_happens_when_survivors_halve(self):
        """After half the sequences finish, newly started green boxes obey
        the doubled minimum threshold."""
        # 4 short sequences and 4 long ones: survivors halve cleanly
        locals_ = [cyclic(30, 3) for _ in range(4)] + [cyclic(1500, 3) for _ in range(4)]
        wl = ParallelWorkload.from_local(locals_)
        K, s = 64, 8
        res = BlackBoxPar(K, s).run(wl)
        # find the time the 4th processor finished
        t_half = int(np.sort(res.completion_times)[3])
        green_budget = K // 2
        late_min = green_budget // 4  # v̂ = 4 survivors -> min height 8
        late = [r for r in res.trace if r.tag == "green" and r.start > t_half + s * green_budget]
        assert late, "expected green boxes after the halving"
        assert min(r.height for r in late) >= late_min

    def test_no_reboot_keeps_original_lattice(self):
        locals_ = [cyclic(30, 3) for _ in range(4)] + [cyclic(800, 3) for _ in range(4)]
        wl = ParallelWorkload.from_local(locals_)
        res = BlackBoxPar(64, 8, reboot=False).run(wl)
        green = [r for r in res.trace if r.tag == "green"]
        assert min(r.height for r in green) == (64 // 2) // 8  # p=8 lattice floor
