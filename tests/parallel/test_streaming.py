"""Tests for trace-store-fed streaming execution (bounded-memory path)."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.exec.cache import workload_fingerprint
from repro.obs import metrics as obs_metrics
from repro.paging.engine import run_box
from repro.parallel.streaming import (
    BoxFeed,
    BoxServer,
    StreamingWorkload,
    make_box_server,
    open_streaming,
    request_feed,
)
from repro.traces.store import write_store
from repro.workloads import make_parallel_workload


def rng(seed=0):
    return np.random.default_rng(seed)


@pytest.fixture()
def stored(tmp_path):
    wl = make_parallel_workload(p=3, n_requests=500, k=32, rng=rng(4))
    store = write_store(tmp_path / "s.store", wl, chunk_rows=64)
    return wl, store


class TestStreamingWorkload:
    def test_structural_surface(self, stored):
        wl, store = stored
        sw = open_streaming(store)
        assert sw.p == wl.p
        assert sw.lengths == wl.lengths
        assert sw.name.startswith("stream:")
        assert sw.total_requests == sum(wl.lengths)
        assert sw.meta["streaming"] is True

    def test_shares_cache_fingerprint_with_memory_form(self, stored):
        wl, store = stored
        sw = open_streaming(store)
        assert workload_fingerprint(sw) == workload_fingerprint(wl)

    def test_chunks_reassemble_column(self, stored):
        wl, store = stored
        sw = open_streaming(store)
        col = np.concatenate(list(sw.chunks(1)))
        np.testing.assert_array_equal(col, wl.sequences[1])

    def test_chunk_traffic_counters(self, stored):
        _, store = stored
        sw = open_streaming(store)
        with obs_metrics.collecting() as reg:
            list(sw.chunks(0))
        snap = reg.snapshot()["counters"]
        assert snap["sim.traces.chunks{proc=0}"] >= 1
        assert snap["sim.traces.requests_streamed{proc=0}"] == sw.lengths[0]

    def test_pickles_as_store_path(self, stored):
        _, store = stored
        sw = open_streaming(store)
        clone = pickle.loads(pickle.dumps(sw))
        assert isinstance(clone, StreamingWorkload)
        assert clone.content_digest == sw.content_digest
        assert clone.lengths == sw.lengths

    def test_materialize_matches(self, stored):
        wl, store = stored
        mat = open_streaming(store).materialize()
        for a, b in zip(mat.sequences, wl.sequences):
            np.testing.assert_array_equal(np.asarray(a), b)


class TestBoxFeed:
    def test_serves_boxes_identical_to_run_box(self, stored):
        wl, store = stored
        sw = open_streaming(store)
        feed = BoxFeed(sw.chunks(0), sw.lengths[0])
        seq = wl.sequences[0]
        pos = 0
        while pos < len(seq):
            ref = run_box(seq, pos, 8, 64, 4)
            got = feed.serve(pos, 8, 64, 4)
            assert (got.start, got.end, got.hits, got.faults) == (
                ref.start, ref.end, ref.hits, ref.faults,
            )
            pos = got.end if got.end > pos else pos + 1

    def test_resident_rows_bounded_by_budget_plus_chunk(self, stored):
        # amortized compaction keeps at most one live window of dead
        # prefix around, so the bound is twice (budget + chunk rows)
        wl, store = stored
        sw = open_streaming(store)
        feed = BoxFeed(sw.chunks(0), sw.lengths[0])
        budget, chunk_rows = 64, store.chunk_rows
        peak = 0
        pos = 0
        while pos < sw.lengths[0]:
            r = feed.serve(pos, 8, budget, 4)
            peak = max(peak, feed.resident_rows)
            pos = r.end if r.end > pos else pos + 1
        assert peak <= 2 * (budget + chunk_rows)

    def test_truncated_stream_raises(self):
        chunks = iter([np.arange(10, dtype=np.int64)])
        feed = BoxFeed(chunks, length=50)
        with pytest.raises(ValueError, match="stream ended"):
            feed.ensure(40)


class TestBoxServer:
    def test_strategy_matrix(self, stored, monkeypatch):
        wl, store = stored
        monkeypatch.delenv("REPRO_SIM", raising=False)
        assert make_box_server(wl, 4).backend == "event"
        assert make_box_server(wl, 4).streaming is False
        sw = open_streaming(store)
        assert make_box_server(sw, 4).streaming is True
        monkeypatch.setenv("REPRO_SIM", "reference")
        assert make_box_server(wl, 4).backend == "reference"

    @pytest.mark.parametrize("sim", ["event", "reference"])
    @pytest.mark.parametrize("streamed", [False, True])
    def test_all_cells_serve_identical_boxes(self, stored, monkeypatch, sim, streamed):
        wl, store = stored
        monkeypatch.setenv("REPRO_SIM", sim)
        target = open_streaming(store) if streamed else wl
        server = make_box_server(target, 4)
        seq = wl.sequences[2]
        pos = 0
        while pos < len(seq):
            ref = run_box(seq, pos, 16, 128, 4)
            got = server.serve(2, pos, 16, 128)
            assert (got.start, got.end, got.hits, got.faults) == (
                ref.start, ref.end, ref.hits, ref.faults,
            ), f"cell sim={sim} streamed={streamed}"
            pos = got.end if got.end > pos else pos + 1

    def test_resident_rows_zero_when_not_streaming(self, stored):
        wl, _ = stored
        assert make_box_server(wl, 4).resident_rows() == 0


class TestRequestFeed:
    def test_memory_feed_walks_column(self, stored):
        wl, _ = stored
        assert list(request_feed(wl, 0)) == wl.sequences[0].tolist()

    def test_streamed_feed_walks_column(self, stored):
        wl, store = stored
        sw = open_streaming(store)
        assert list(request_feed(sw, 2)) == wl.sequences[2].tolist()
