"""Differential harness: the event backend ≡ the reference oracle, byte for byte.

This is the lockdown for the event-driven streaming simulator.  Every
registered algorithm is run twice on the same workload — once on the
default ``event`` backend (shared :class:`EventScheduler` + kernelized
:class:`BoxServer`) and once with ``REPRO_SIM=reference`` (the retained
timestep / per-request oracles) — and everything observable must match
exactly:

* per-processor completion times (hence makespan and mean completion),
* the full box trace (heights, wall intervals, service intervals,
  hit/fault splits),
* the ``sim.*`` metrics snapshot after :func:`strip_wall`.

A second axis proves streamed execution is invisible: a workload served
chunk-by-chunk from a :class:`TraceStore` through ``StreamingWorkload``
produces the same bytes as the in-memory form (modulo the ``sim.traces.*``
stream-traffic counters, which only exist when streaming).

The grid deliberately mixes powers of two with the newly legal arbitrary
``k >= p >= 1`` shapes.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import metrics as obs_metrics
from repro.obs.metrics import strip_wall
from repro.parallel import SIM_ENV, open_streaming, sim_backend
from repro.parallel.schedulers import RunSpec, make_algorithm
from repro.traces.store import write_store
from repro.workloads import make_parallel_workload

# (cache_size, p): powers of two and not, including p=1 and k=p.
GRID = [(16, 2), (64, 8), (48, 4), (100, 5), (12, 3), (7, 1), (5, 5)]
ALGORITHMS = ["det-par", "rand-par", "black-box-green", "global-lru", "equal-partition"]
KINDS = ["mixed_kinds", "cyclic", "zipf", "multiscale", "phased"]


@contextmanager
def backend(name):
    """Scope ``$REPRO_SIM`` to ``name``, restoring the prior value."""
    old = os.environ.get(SIM_ENV)
    os.environ[SIM_ENV] = name
    try:
        yield
    finally:
        if old is None:
            os.environ.pop(SIM_ENV, None)
        else:
            os.environ[SIM_ENV] = old


def run_with_metrics(alg_name, k, s, wl, seed=0):
    """One observed run; returns (result, strip_wall'ed sim.* snapshot)."""
    with obs_metrics.collecting() as reg:
        alg = make_algorithm(RunSpec(algorithm=alg_name, cache_size=k, miss_cost=s, xi=1, seed=seed))
        res = alg.run(wl)
    return res, strip_wall(reg.snapshot())


def drop_stream_counters(snap):
    """Snapshot minus the ``sim.traces.*`` stream-traffic counters, which
    exist only on streamed runs (the documented, intended difference)."""
    out = {}
    for section, metrics in snap.items():
        if isinstance(metrics, dict):
            out[section] = {
                k: v for k, v in metrics.items() if not k.startswith("sim.traces.")
            }
        else:
            out[section] = metrics
    return out


def trace_tuples(res):
    return [
        (r.proc, r.height, r.start, r.end, r.served_start, r.served_end, r.hits, r.faults, r.tag)
        for r in res.trace
    ]


def assert_identical(a, b, ctx=""):
    """Byte-level equality of everything observable about two runs."""
    assert a.algorithm == b.algorithm, ctx
    assert a.completion_times.tolist() == b.completion_times.tolist(), (
        f"{ctx}: completions {a.completion_times} != {b.completion_times}"
    )
    assert trace_tuples(a) == trace_tuples(b), f"{ctx}: box traces differ"
    assert a.makespan == b.makespan, ctx
    if a.algorithm == "global-lru":
        assert a.meta == b.meta, f"{ctx}: hit/fault counts differ"


def feasible(alg, k, p):
    """Skip grid cells an algorithm rejects by design (not a backend issue)."""
    if alg == "black-box-green":
        # needs K/2 >= next_pow2(p) at run time
        pw = 1 << (max(1, p) - 1).bit_length()
        return k // 2 >= pw
    return True


class TestBackendSwitch:
    def test_default_is_event(self, monkeypatch):
        monkeypatch.delenv(SIM_ENV, raising=False)
        assert sim_backend() == "event"

    @pytest.mark.parametrize("value,expect", [
        ("event", "event"), ("fast", "event"),
        ("reference", "reference"), ("ref", "reference"), ("timestep", "reference"),
    ])
    def test_aliases(self, monkeypatch, value, expect):
        monkeypatch.setenv(SIM_ENV, value)
        assert sim_backend() == expect

    def test_invalid_rejected(self, monkeypatch):
        monkeypatch.setenv(SIM_ENV, "warp-drive")
        with pytest.raises(ValueError, match="REPRO_SIM"):
            sim_backend()


class TestEventEqualsReference:
    """The headline property: event ≡ reference on the full matrix."""

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10**6),
        case=st.sampled_from(GRID),
        alg=st.sampled_from(ALGORITHMS),
        kind=st.sampled_from(KINDS),
        s=st.sampled_from([2, 4, 8]),
    )
    def test_differential(self, seed, case, alg, kind, s):
        k, p = case
        if not feasible(alg, k, p):
            return
        wl = make_parallel_workload(
            p=p, n_requests=120, k=k, rng=np.random.default_rng(seed), kind=kind
        )
        try:
            with backend("event"):
                res_e, snap_e = run_with_metrics(alg, k, s, wl, seed=seed)
        except ValueError:
            # infeasible cell (e.g. det-par reservation does not fit):
            # the reference backend must reject it identically
            with backend("reference"):
                with pytest.raises(ValueError):
                    run_with_metrics(alg, k, s, wl, seed=seed)
            return
        with backend("reference"):
            res_r, snap_r = run_with_metrics(alg, k, s, wl, seed=seed)
        assert_identical(res_e, res_r, ctx=f"{alg} k={k} p={p} kind={kind} s={s} seed={seed}")
        assert snap_e == snap_r, f"{alg}: sim.* metrics drifted between backends"

    @pytest.mark.parametrize("alg", ALGORITHMS)
    @pytest.mark.parametrize("k,p", [(64, 8), (100, 5)])
    def test_pinned_cells(self, alg, k, p):
        """Deterministic non-hypothesis cells for quick bisection."""
        if not feasible(alg, k, p):
            pytest.skip("algorithm rejects this cell by design")
        wl = make_parallel_workload(p=p, n_requests=200, k=k, rng=np.random.default_rng(42))
        with backend("event"):
            res_e, snap_e = run_with_metrics(alg, k, 4, wl)
        with backend("reference"):
            res_r, snap_r = run_with_metrics(alg, k, 4, wl)
        assert_identical(res_e, res_r, ctx=f"{alg} k={k} p={p}")
        assert snap_e == snap_r


class TestStreamedEqualsInMemory:
    """Streaming is an execution detail: same bytes as the in-memory run."""

    @pytest.fixture()
    def stored(self, tmp_path):
        wl = make_parallel_workload(p=4, n_requests=300, k=32, rng=np.random.default_rng(11))
        store = write_store(tmp_path / "diff.store", wl, chunk_rows=64)
        return wl, open_streaming(store)

    @pytest.mark.parametrize("alg", ALGORITHMS)
    def test_streamed_event_matches_memory(self, stored, alg):
        wl, sw = stored
        with backend("event"):
            mem, _ = run_with_metrics(alg, 32, 4, wl)
            srm, _ = run_with_metrics(alg, 32, 4, sw)
        assert_identical(mem, srm, ctx=f"{alg} streamed-vs-memory")

    @pytest.mark.parametrize("alg", ALGORITHMS)
    def test_streamed_reference_matches_too(self, stored, alg):
        wl, sw = stored
        with backend("reference"):
            mem, _ = run_with_metrics(alg, 32, 4, wl)
            srm, _ = run_with_metrics(alg, 32, 4, sw)
        assert_identical(mem, srm, ctx=f"{alg} streamed-reference")

    def test_stream_counters_only_on_streamed_runs(self, stored):
        wl, sw = stored
        with backend("event"):
            _, snap_mem = run_with_metrics("det-par", 32, 4, wl)
            _, snap_str = run_with_metrics("det-par", 32, 4, sw)
        counters_mem = snap_mem.get("counters", {})
        counters_str = snap_str.get("counters", {})
        assert not [k for k in counters_mem if k.startswith("sim.traces.")]
        assert [k for k in counters_str if k.startswith("sim.traces.chunks")]
        # everything that is not stream traffic is identical
        assert drop_stream_counters(snap_mem) == drop_stream_counters(snap_str)
