"""Tests for RAND-PAR: structure, accounting, capacity, Observation 1."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LatticeError, RandPar, next_power_of_two
from repro.parallel import peak_concurrent_height
from repro.workloads import ParallelWorkload, cyclic, make_parallel_workload, scan


def rng(seed=0):
    return np.random.default_rng(seed)


def simple_workload(p=4, n=100):
    return ParallelWorkload.from_local([cyclic(n, 5 + i) for i in range(p)], name="cyc")


class TestValidation:
    def test_next_power_of_two(self):
        assert [next_power_of_two(x) for x in (1, 2, 3, 4, 5, 17)] == [1, 2, 4, 4, 8, 32]
        with pytest.raises(ValueError):
            next_power_of_two(0)

    def test_non_power_of_two_cache_accepted(self):
        res = RandPar(48, 4, rng()).run(simple_workload(p=4, n=60))
        assert res.meta["finished"]

    def test_invalid_cache_raises_lattice_error(self):
        with pytest.raises(LatticeError) as ei:
            RandPar(0, 4, rng())
        assert str(ei.value) == "cache size k must be >= 1 (got k=0; nearest valid k is 1)"

    def test_miss_cost(self):
        with pytest.raises(ValueError):
            RandPar(64, 1, rng())

    def test_cache_too_small_for_p(self):
        alg = RandPar(4, 4, rng())
        wl = simple_workload(p=8)
        with pytest.raises(LatticeError) as ei:
            alg.run(wl)
        assert str(ei.value) == "need p <= k (got p=8; nearest valid p is 4)"


class TestExecution:
    def test_completes_all(self):
        alg = RandPar(32, 8, rng(1))
        wl = simple_workload(p=4, n=150)
        res = alg.run(wl)
        assert res.meta["finished"]
        assert (res.completion_times > 0).all()
        res.validate()

    def test_makespan_is_max_completion(self):
        res = RandPar(32, 8, rng(2)).run(simple_workload())
        assert res.makespan == res.completion_times.max()

    def test_trace_capacity_never_exceeds_cache(self):
        wl = make_parallel_workload(p=8, n_requests=200, k=32, rng=rng(3))
        res = RandPar(32, 8, rng(4)).run(wl)
        assert peak_concurrent_height(res.trace) <= 32

    def test_empty_sequences_complete_at_zero(self):
        wl = ParallelWorkload.from_local([cyclic(50, 4), np.empty(0, dtype=np.int64)])
        res = RandPar(16, 4, rng(5)).run(wl)
        assert res.completion_times[1] == 0
        assert res.completion_times[0] > 0

    def test_deterministic_given_seed(self):
        wl = simple_workload()
        a = RandPar(32, 8, rng(9)).run(wl)
        b = RandPar(32, 8, rng(9)).run(wl)
        assert a.makespan == b.makespan
        assert (a.completion_times == b.completion_times).all()

    def test_single_processor(self):
        wl = ParallelWorkload.from_local([cyclic(80, 6)])
        res = RandPar(16, 4, rng(6)).run(wl)
        assert res.meta["finished"]
        # with one processor the primary boxes have the full cache height
        primary = [r for r in res.trace if r.tag == "primary"]
        assert all(r.height == 16 for r in primary)

    def test_max_chunks_guard(self):
        wl = simple_workload(p=4, n=5000)
        res = RandPar(32, 8, rng(7)).run(wl, max_chunks=2)
        assert not res.meta["finished"]
        assert len(res.meta["chunks"]) == 2


class TestChunkStructure:
    def test_primary_heights_are_minimum(self):
        wl = simple_workload(p=4, n=200)
        res = RandPar(32, 8, rng(8)).run(wl)
        for r in res.trace:
            if r.tag == "primary":
                assert r.height == 32 // 4  # K / r_pow while all 4 are active
                break

    def test_secondary_heights_on_lattice(self):
        wl = simple_workload(p=4, n=300)
        res = RandPar(32, 8, rng(10)).run(wl)
        lattice_heights = {8, 16, 32}
        secondary = {r.height for r in res.trace if r.tag == "secondary"}
        assert secondary <= lattice_heights

    def test_observation1_chunk_balance(self):
        """Primary length is fixed; E[secondary length] matches it (E2).

        We average the secondary/primary length ratio over many chunks with
        all processors alive; Observation 1 says the expectation is 1.
        """
        p, K, s = 8, 64, 8
        wl = ParallelWorkload.from_local([cyclic(20000, 3) for _ in range(p)])
        res = RandPar(K, s, rng(11)).run(wl, max_chunks=300)
        chunks = [c for c in res.meta["chunks"] if c.active_at_start == p]
        assert len(chunks) >= 50
        ratios = [c.secondary_length / c.primary_length for c in chunks]
        mean = float(np.mean(ratios))
        assert 0.5 < mean < 2.0, mean

    def test_chunk_impact_recorded(self):
        wl = simple_workload(p=4, n=100)
        res = RandPar(32, 8, rng(12)).run(wl)
        for c in res.meta["chunks"]:
            assert c.primary_impact >= 0 and c.secondary_impact >= 0
            assert c.drawn_height in (8, 16, 32)

    def test_phases_halve(self):
        """Phase boundaries appear as processors finish at staggered times."""
        locals_ = [cyclic(100 * (i + 1), 4) for i in range(8)]
        wl = ParallelWorkload.from_local(locals_)
        res = RandPar(64, 8, rng(13)).run(wl)
        assert res.meta["finished"]
        assert len(res.meta["phase_bounds"]) >= 1


class TestDistributionAblation:
    """RAND-PAR accepts the E8 ablation distributions for its secondary part."""

    def test_uniform_kind_runs(self):
        wl = simple_workload(p=4, n=150)
        res = RandPar(32, 8, rng(20), kind="uniform").run(wl)
        assert res.meta["finished"]
        assert res.meta["distribution"] == "uniform"

    def test_uniform_draws_tall_boxes_more_often(self):
        wl = ParallelWorkload.from_local([cyclic(4000, 3) for _ in range(4)])
        inv = RandPar(32, 8, rng(21), kind="inverse_square").run(wl, max_chunks=120)
        uni = RandPar(32, 8, rng(21), kind="uniform").run(wl, max_chunks=120)
        tall_inv = sum(1 for c in inv.meta["chunks"] if c.drawn_height == 32)
        tall_uni = sum(1 for c in uni.meta["chunks"] if c.drawn_height == 32)
        assert tall_uni > tall_inv

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            RandPar(32, 8, rng(22), kind="nope").run(simple_workload())
