"""Unit tests for the GLOBAL-LRU time-stepped shared-cache simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel.timestep import GlobalLRU
from repro.workloads.trace import ParallelWorkload


def wl(*seqs, allow_shared=False):
    return ParallelWorkload(
        sequences=[np.asarray(s, dtype=np.int64) for s in seqs],
        name="t",
        allow_shared=allow_shared,
    )


def test_constructor_validates():
    with pytest.raises(ValueError, match="cache_size"):
        GlobalLRU(cache_size=0, miss_cost=2)
    with pytest.raises(ValueError, match="miss_cost"):
        GlobalLRU(cache_size=4, miss_cost=1)


def test_single_processor_all_misses_then_hits():
    # 3 distinct pages twice through, cache big enough to hold them all:
    # first pass faults (3·s), second pass hits (3·1)
    sim = GlobalLRU(cache_size=4, miss_cost=5)
    result = sim.run(wl([0, 1, 2, 0, 1, 2]))
    assert result.meta == {"hits": 3, "faults": 3}
    assert result.makespan == 3 * 5 + 3
    assert list(result.completion_times) == [18]


def test_accounting_is_conserved():
    sim = GlobalLRU(cache_size=2, miss_cost=3)
    seqs = [[0, 1, 0, 1, 0], [2, 3, 2, 3]]
    result = sim.run(wl(*seqs))
    assert result.meta["hits"] + result.meta["faults"] == sum(len(s) for s in seqs)
    assert result.algorithm == "global-lru"
    assert result.trace == []  # no box structure for a shared cache


def test_empty_processor_finishes_at_time_zero():
    sim = GlobalLRU(cache_size=4, miss_cost=2)
    result = sim.run(wl([], [5, 5, 5]))
    assert result.completion_times[0] == 0
    assert result.completion_times[1] == 2 + 1 + 1  # one fault, two hits


def test_thrashing_neighbor_interferes():
    # alone, proc 0's cyclic working set fits: one fault per page.
    victim = [0, 1, 0, 1] * 8
    alone = GlobalLRU(cache_size=2, miss_cost=4).run(wl(victim))
    # sharing the 2-frame cache with a scanning neighbor evicts the
    # victim's pages between reuses — strictly more faults in total
    scanner = list(range(10, 26))
    together = GlobalLRU(cache_size=2, miss_cost=4).run(wl(victim, scanner))
    assert together.meta["faults"] > alone.meta["faults"] + len(scanner) - 2
    assert together.makespan > alone.makespan


def test_shared_pages_can_be_exploited():
    # both processors stream the same pages: the second serving is a hit
    # (the shared-pages model GLOBAL-LRU can exploit and boxes cannot)
    result = GlobalLRU(cache_size=4, miss_cost=3).run(
        wl([0, 1, 2], [0, 1, 2], allow_shared=True)
    )
    assert result.meta["faults"] == 3
    assert result.meta["hits"] == 3


def test_makespan_is_latest_completion():
    sim = GlobalLRU(cache_size=8, miss_cost=2)
    result = sim.run(wl([0, 0, 0], [1, 2, 3, 4, 5]))
    assert result.makespan == int(result.completion_times.max())


def _run_full_rescan(workload, cache_size, miss_cost):
    """The historical O(p)-per-event GlobalLRU loop, kept verbatim as the
    oracle for the heap-based event loop: same round-robin service order
    at equal times, so every count must be byte-identical."""
    from repro.paging.lru import LRUCache

    s = miss_cost
    p = workload.p
    seqs = workload.sequences
    n = [len(x) for x in seqs]
    pos = [0] * p
    busy_until = [0] * p
    done = [n[i] == 0 for i in range(p)]
    completion = np.zeros(p, dtype=np.int64)
    cache = LRUCache(cache_size)
    remaining = sum(1 for d in done if not d)
    t = 0
    while remaining > 0:
        for i in range(p):
            if done[i] or busy_until[i] > t:
                continue
            page = int(seqs[i][pos[i]])
            hit = cache.touch(page)
            cost = 1 if hit else s
            busy_until[i] = t + cost
            pos[i] += 1
            if pos[i] >= n[i]:
                done[i] = True
                completion[i] = t + cost
                remaining -= 1
        if remaining == 0:
            break
        t = min(busy_until[i] for i in range(p) if not done[i])
    return completion, {"hits": cache.hits, "faults": cache.faults}


def test_reference_backend_is_byte_identical(monkeypatch):
    """REPRO_SIM=reference routes to the retained rescan oracle in-module."""
    r = np.random.default_rng(77)
    for _ in range(5):
        p = int(r.integers(1, 7))
        wl = ParallelWorkload.from_local(
            [r.integers(0, 24, size=int(r.integers(30, 120))) for _ in range(p)]
        )
        monkeypatch.delenv("REPRO_SIM", raising=False)
        event = GlobalLRU(12, 6).run(wl)
        monkeypatch.setenv("REPRO_SIM", "reference")
        ref = GlobalLRU(12, 6).run(wl)
        assert event.completion_times.tolist() == ref.completion_times.tolist()
        assert event.meta == ref.meta


def test_streamed_run_matches_memory(tmp_path):
    from repro.parallel.streaming import open_streaming
    from repro.traces.store import write_store

    r = np.random.default_rng(3)
    wl = ParallelWorkload.from_local(
        [r.integers(0, 30, size=200) for _ in range(4)]
    )
    sw = open_streaming(write_store(tmp_path / "g.store", wl, chunk_rows=32))
    a = GlobalLRU(16, 8).run(wl)
    b = GlobalLRU(16, 8).run(sw)
    assert a.completion_times.tolist() == b.completion_times.tolist()
    assert a.meta == b.meta


def test_heap_loop_is_byte_identical_to_full_rescan():
    rng = np.random.default_rng(42)
    for trial in range(20):
        p = int(rng.integers(1, 9))
        seqs = [
            rng.integers(0, int(rng.integers(2, 20)), size=int(rng.integers(0, 120))).tolist()
            for _ in range(p)
        ]
        cache_size = int(rng.integers(1, 12))
        miss_cost = int(rng.integers(2, 9))
        workload = wl(*seqs, allow_shared=True)
        result = GlobalLRU(cache_size=cache_size, miss_cost=miss_cost).run(workload)
        completion, meta = _run_full_rescan(workload, cache_size, miss_cost)
        assert list(result.completion_times) == list(completion), trial
        assert result.meta == meta, trial
