"""CLI fault-tolerance surface: checkpoints, resume, keep-going, runs listing."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.exec import RunCheckpoint, UnitExecutionError, inject_faults

pytestmark = pytest.mark.chaos


def args_for(tmp_path, *extra):
    return [
        "--cache-dir", str(tmp_path / "cache"),
        "--runs-dir", str(tmp_path / "runs"),
        *extra,
    ]


def strip_noise(text):
    return [l for l in text.splitlines() if not l.startswith("[telemetry]") and " rows in " not in l]


def test_fresh_run_writes_complete_manifest(tmp_path, capsys):
    rc = main(["e1", "--run-id", "fresh", *args_for(tmp_path)])
    assert rc == 0
    ckpt = RunCheckpoint.load("fresh", root=tmp_path / "runs")
    assert ckpt.manifest.status == "complete"
    assert ckpt.manifest.completed == ["e1"]
    assert ckpt.manifest.config["experiment"] == "e1"
    assert len(ckpt.completed_units()) > 0
    data = json.loads(ckpt.manifest_path.read_text())
    assert data["manifest_version"] == 1


def test_no_checkpoint_flag_writes_nothing(tmp_path, capsys):
    rc = main(["e1", "--no-checkpoint", *args_for(tmp_path)])
    assert rc == 0
    assert not (tmp_path / "runs").exists()


def test_interrupt_then_resume_same_table_all_hits(tmp_path, capsys):
    # ground truth: a clean serial run of the same experiment
    clean_dir = tmp_path / "clean"
    rc = main(["e1", "--out", str(clean_dir / "e1.md"),
               "--cache-dir", str(clean_dir / "cache"),
               "--runs-dir", str(clean_dir / "runs")])
    assert rc == 0
    capsys.readouterr()

    # a mid-sweep Ctrl-C (injected deterministically) checkpoints and exits 130
    with inject_faults("interrupt:e1/rand-green:1"):
        rc = main(["e1", "--run-id", "itest", "--out", str(tmp_path / "resumed.md"),
                   *args_for(tmp_path)])
    assert rc == 130
    err = capsys.readouterr().err
    assert "resume with: repro resume itest" in err
    ckpt = RunCheckpoint.load("itest", root=tmp_path / "runs")
    assert ckpt.manifest.status == "interrupted"
    journaled = len(ckpt.completed_units())
    assert journaled > 0  # cells that finished before the interrupt survived

    # resume: finished cells come back as cache hits, table matches clean run
    # (--out/--cache-dir/--runs-dir are replayed from the stored manifest)
    rc = main(["resume", "itest", "--runs-dir", str(tmp_path / "runs")])
    assert rc == 0
    out = capsys.readouterr().out
    assert "resuming itest: 0 done, 1 to go (e1)" in out
    assert f"cache_hits={journaled}" in out  # every journaled cell was a hit
    assert RunCheckpoint.load("itest", root=tmp_path / "runs").manifest.status == "complete"
    assert strip_noise((tmp_path / "resumed.md").read_text()) == strip_noise(
        (clean_dir / "e1.md").read_text()
    )


def test_resume_complete_run_is_a_noop(tmp_path, capsys):
    main(["e1", "--run-id", "done", *args_for(tmp_path)])
    capsys.readouterr()
    rc = main(["resume", "done", *args_for(tmp_path)])
    assert rc == 0
    assert "already complete" in capsys.readouterr().out


def test_resume_unknown_run_errors_with_known_list(tmp_path, capsys):
    main(["e1", "--run-id", "only", *args_for(tmp_path)])
    capsys.readouterr()
    assert main(["resume", "nope", *args_for(tmp_path)]) == 2
    err = capsys.readouterr().err
    assert "nope" in err and "only" in err
    assert main(["resume", *args_for(tmp_path)]) == 2  # missing run id
    assert "requires a run id" in capsys.readouterr().err


def test_runs_listing(tmp_path, capsys):
    assert main(["runs", "--runs-dir", str(tmp_path / "runs")]) == 0
    assert "no checkpointed runs" in capsys.readouterr().out
    main(["e1", "--run-id", "r1", *args_for(tmp_path)])
    capsys.readouterr()
    assert main(["runs", "--runs-dir", str(tmp_path / "runs")]) == 0
    out = capsys.readouterr().out
    assert "r1" in out and "status=complete" in out and "completed=1/1" in out


def test_keep_going_renders_fail_rows(tmp_path, capsys):
    with inject_faults("crash:e1/rand-green/multiscale:0"):  # every attempt fails
        rc = main(["e1", "--keep-going", "--no-cache", *args_for(tmp_path)])
    assert rc == 0  # the sweep survives
    out = capsys.readouterr().out
    assert "FAIL" in out  # degraded cells are marked in the table
    assert "failed cells" in out  # and itemized below it
    assert "InjectedFault" in out
    assert "failed=" in out  # telemetry line counts them


def test_fail_fast_aborts_on_exhausted_cell(tmp_path, capsys):
    with inject_faults("crash:e1/rand-green/multiscale:0"):
        with pytest.raises(UnitExecutionError, match="failed after 1 attempt"):
            main(["e1", "--fail-fast", "--no-cache", *args_for(tmp_path)])


def test_flag_validation(tmp_path):
    for bad in (["e1", "--jobs", "0"], ["e1", "--retries", "-1"], ["e1", "--timeout", "0"]):
        with pytest.raises(SystemExit):
            main(bad + args_for(tmp_path))
