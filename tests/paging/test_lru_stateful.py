"""Stateful (rule-based) hypothesis testing of the LRU cache.

The LRU implementation is the hottest data structure in the repository;
this machine drives it through arbitrary interleavings of touches and
clears while checking it against a brutally simple model after every
step — contents, recency order, counters, and victim prediction.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.paging import LRUCache


class LRUMachine(RuleBasedStateMachine):
    """Model-based check: dict-free reference vs the linked-list LRU."""

    def __init__(self):
        super().__init__()
        self.capacity = 4
        self.cache = LRUCache(self.capacity)
        self.model: list[int] = []  # most recent first
        self.model_hits = 0
        self.model_faults = 0

    @rule(page=st.integers(min_value=0, max_value=9))
    def touch(self, page):
        """Serve a request in both implementations."""
        hit = self.cache.touch(page)
        if page in self.model:
            self.model.remove(page)
            self.model_hits += 1
            assert hit
        else:
            self.model_faults += 1
            assert not hit
            if len(self.model) >= self.capacity:
                self.model.pop()
        self.model.insert(0, page)

    @rule()
    def clear(self):
        """Cold-start both."""
        self.cache.clear()
        self.model.clear()

    @invariant()
    def contents_agree(self):
        assert self.cache.pages_mru_order() == self.model

    @invariant()
    def victim_agrees(self):
        expected = self.model[-1] if self.model else None
        assert self.cache.peek_victim() == expected

    @invariant()
    def counters_agree(self):
        assert self.cache.hits == self.model_hits
        assert self.cache.faults == self.model_faults

    @invariant()
    def capacity_respected(self):
        assert len(self.cache) <= self.capacity


LRUMachine.TestCase.settings = settings(max_examples=60, stateful_step_count=60, deadline=None)
TestLRUStateful = LRUMachine.TestCase
