"""The fast box kernel must be bit-identical to the reference engine.

``run_box`` is the semantic ground truth: a dict-LRU simulation of one
cold box.  ``repro.paging.kernel`` replays the same decisions from a
reuse-distance precompute, so every observable — endpoints, hit/fault
splits, time used, DP impacts, sim.* metrics — must match *exactly*,
not approximately.  These tests pin that equivalence property-style
(hypothesis drives sequences, starts, heights, budgets) and pin the
operational surface around it: the internal scalar/vectorized paths and
the chunked reuse build, the ladder plan the offline DP probes, the
streaming kernel, the kernel cache, and the ``REPRO_KERNEL`` escape
hatch.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.paging.kernel as kernel_mod
from repro.core.box import HeightLattice
from repro.core.distributions import make_distribution
from repro.green.offline import optimal_box_profile
from repro.paging.engine import run_box
from repro.paging.kernel import (
    KERNEL_ENV,
    SequenceKernel,
    StreamKernel,
    clear_kernel_cache,
    get_kernel,
    kernel_backend,
    maybe_kernel,
    run_box_fast,
)

# --------------------------------------------------------------------- #
# property: run_box_fast ≡ run_box
# --------------------------------------------------------------------- #

sequences = st.lists(st.integers(min_value=0, max_value=12), min_size=0, max_size=160)


@given(
    seq=sequences,
    start_frac=st.floats(min_value=0.0, max_value=1.0),
    height=st.integers(min_value=1, max_value=20),
    budget=st.integers(min_value=0, max_value=400),
    miss_cost=st.integers(min_value=2, max_value=9),
)
@settings(max_examples=300)
def test_run_box_fast_matches_reference(seq, start_frac, height, budget, miss_cost):
    arr = np.asarray(seq, dtype=np.int64)
    start = int(start_frac * len(arr))  # includes start == n
    kern = SequenceKernel(arr)
    assert run_box_fast(kern, start, height, budget, miss_cost) == run_box(
        arr, start, height, budget, miss_cost
    )


def test_budget_exhaustion_mid_hit_and_mid_miss():
    # [0, 1, 0, 1, ...] with height 2: everything after the first two
    # requests hits.  Budgets chosen to land the cutoff on a hit, on a
    # miss, and exactly on a boundary.
    arr = np.asarray([0, 1] * 20, dtype=np.int64)
    kern = SequenceKernel(arr)
    for budget in range(0, 30):
        for height in (1, 2, 3):
            got = run_box_fast(kern, 0, height, budget, 5)
            want = run_box(arr, 0, height, budget, 5)
            assert got == want, (budget, height)


def test_scalar_walk_defers_to_vectorized_on_long_boxes():
    # A cyclic sequence inside the height: after the first lap, every
    # request hits, so a big budget serves far past _SCALAR_MAX and the
    # scalar walk must hand off mid-box without losing its prefix.
    n = 4 * kernel_mod._SCALAR_MAX
    arr = np.asarray([i % 4 for i in range(n)], dtype=np.int64)
    kern = SequenceKernel(arr)
    budget = n + 4 * 3  # every request affordable: 4 faults + (n-4) hits
    got = run_box_fast(kern, 0, 8, budget, 4)
    want = run_box(arr, 0, 8, budget, 4)
    assert got == want
    assert got.served > kernel_mod._SCALAR_MAX


def test_reuse_build_vectorized_matches_fenwick(monkeypatch):
    # The chunked numpy build and the O(n log n) Fenwick sweep are two
    # implementations of the same precompute; cross-check them across
    # chunk-boundary lengths.
    rng = np.random.default_rng(11)
    for n in (0, 1, 127, 128, 129, 400, 1200):
        arr = rng.integers(0, 17, size=n)
        fast = SequenceKernel(arr)
        monkeypatch.setattr(kernel_mod, "_VEC_BUILD_MAX", 0)
        fenwick = SequenceKernel(arr)
        monkeypatch.undo()
        assert np.array_equal(fast.prev_occ, fenwick.prev_occ)
        assert np.array_equal(fast.reuse_dist, fenwick.reuse_dist)


# --------------------------------------------------------------------- #
# ladder plan (offline DP's probe path)
# --------------------------------------------------------------------- #


def test_ladder_ends_match_reference_including_block_recompute():
    rng = np.random.default_rng(5)
    arr = rng.integers(0, 24, size=500)
    lattice = HeightLattice(16, 4)
    heights = tuple(int(h) for h in lattice.heights)
    s = 3
    budgets = tuple(s * h for h in heights)
    kern = SequenceKernel(arr)
    starts = list(range(0, len(arr) + 1))
    rng.shuffle(starts)  # non-ascending starts force block recomputes
    for q in starts:
        got = kern.box_ends(q, heights, budgets, s)
        want = [run_box(arr, q, h, s * h, s).end for h in heights]
        assert got == want, q


def test_ladder_plan_is_memoized_and_rows_are_copies():
    arr = np.arange(64, dtype=np.int64) % 8
    kern = SequenceKernel(arr)
    plan = kern.ladder_plan((2, 4), (6, 12), 3)
    assert kern.ladder_plan((2, 4), (6, 12), 3) is plan
    ends = kern.box_ends(0, (2, 4), (6, 12), 3)
    ends[0] = -999  # mutating the returned list must not poison the plan
    assert kern.box_ends(0, (2, 4), (6, 12), 3)[0] != -999


# --------------------------------------------------------------------- #
# streaming kernel
# --------------------------------------------------------------------- #


def test_stream_kernel_matches_sequence_kernel_across_chunks():
    rng = np.random.default_rng(3)
    arr = rng.integers(0, 10, size=300)
    stream = StreamKernel(capacity=16)  # forces growth
    for lo in range(0, len(arr), 37):
        stream.append(arr[lo : lo + 37])
    for start in (0, 1, 50, 299, 300):
        for h, b in ((1, 9), (4, 40), (8, 1000)):
            assert stream.box(start, h, b, 5) == run_box(arr, start, h, b, 5)


def test_stream_kernel_compact_preserves_suffix_boxes():
    rng = np.random.default_rng(9)
    arr = rng.integers(0, 6, size=200)
    stream = StreamKernel(capacity=16)
    stream.append(arr)
    stream.compact(80)
    assert stream.base == 80
    for start in (80, 120, 199):
        assert stream.box(start, 3, 50, 4) == run_box(arr, start, 3, 50, 4)
    with pytest.raises(ValueError, match="precedes retained window"):
        stream.box(79, 3, 50, 4)


# --------------------------------------------------------------------- #
# validation (hoisted out of the hot loops, same errors both paths)
# --------------------------------------------------------------------- #


def test_run_box_fast_validates_like_reference():
    arr = np.asarray([0, 1, 2], dtype=np.int64)
    kern = SequenceKernel(arr)
    with pytest.raises(ValueError, match="box height must be >= 1"):
        run_box_fast(kern, 0, 0, 10, 4)
    with pytest.raises(ValueError, match="miss_cost must be > 1"):
        run_box_fast(kern, 0, 2, 10, 1)
    # identical messages to the reference engine
    for kwargs in ({"height": 0}, {"miss_cost": 1}):
        call = {"start": 0, "height": 2, "budget": 10, "miss_cost": 4, **kwargs}
        with pytest.raises(ValueError) as fast_err:
            run_box_fast(kern, **call)
        with pytest.raises(ValueError) as ref_err:
            run_box(arr, **call)
        assert str(fast_err.value) == str(ref_err.value)


@pytest.mark.parametrize("backend", ["fast", "reference"])
def test_offline_dp_validates_miss_cost_under_both_backends(backend, monkeypatch):
    monkeypatch.setenv(KERNEL_ENV, backend)
    clear_kernel_cache()
    seq = np.asarray([0, 1, 0, 1], dtype=np.int64)
    with pytest.raises(ValueError, match="miss_cost must be > 1"):
        optimal_box_profile(seq, HeightLattice(4, 2), 1)


# --------------------------------------------------------------------- #
# kernel cache
# --------------------------------------------------------------------- #


def test_get_kernel_caches_by_identity_and_by_key():
    clear_kernel_cache()
    arr = np.asarray([0, 1, 0], dtype=np.int64)
    assert get_kernel(arr) is get_kernel(arr)
    other = arr.copy()
    assert get_kernel(other) is not get_kernel(arr)  # different objects
    assert get_kernel(arr, key=("digest", 0)) is get_kernel(other, key=("digest", 0))
    clear_kernel_cache()


def test_kernel_cache_is_lru_bounded():
    clear_kernel_cache()
    keep = [np.asarray([i], dtype=np.int64) for i in range(kernel_mod._CACHE_MAX_ENTRIES + 8)]
    for arr in keep:
        get_kernel(arr)
    assert len(kernel_mod._CACHE) <= kernel_mod._CACHE_MAX_ENTRIES
    # the most recent arrays survive, the oldest were evicted
    assert get_kernel(keep[-1]) is get_kernel(keep[-1])
    clear_kernel_cache()
    assert len(kernel_mod._CACHE) == 0


# --------------------------------------------------------------------- #
# backend selection
# --------------------------------------------------------------------- #


def test_backend_env_switching(monkeypatch):
    arr = np.asarray([0, 1], dtype=np.int64)
    monkeypatch.delenv(KERNEL_ENV, raising=False)
    assert kernel_backend() == "fast"
    assert maybe_kernel(arr) is not None
    for alias in ("fast", "kernel"):
        monkeypatch.setenv(KERNEL_ENV, alias)
        assert kernel_backend() == "fast"
    for alias in ("reference", "ref", " Reference "):
        monkeypatch.setenv(KERNEL_ENV, alias)
        assert kernel_backend() == "reference"
        assert maybe_kernel(arr) is None
    monkeypatch.setenv(KERNEL_ENV, "turbo")
    with pytest.raises(ValueError, match="unknown REPRO_KERNEL backend"):
        kernel_backend()
    clear_kernel_cache()


# --------------------------------------------------------------------- #
# end-to-end determinism across backends
# --------------------------------------------------------------------- #


@pytest.mark.slow
def test_e1_rows_and_sim_metrics_identical_across_backends(monkeypatch):
    """The kernel swap is invisible to every experiment observable.

    Result rows (what the CSVs serialize) and the full stripped metrics
    snapshot — every ``sim.*`` counter included — must be byte-identical
    between ``REPRO_KERNEL=fast`` and ``REPRO_KERNEL=reference``.
    """
    from repro.experiments import run_named_experiment
    from repro.obs import observability
    from repro.obs.metrics import strip_wall

    out = {}
    for backend in ("fast", "reference"):
        monkeypatch.setenv(KERNEL_ENV, backend)
        clear_kernel_cache()
        with observability(metrics=True) as scope:
            rows, _ = run_named_experiment("e1", scale="quick", seed=0)
            out[backend] = (rows, strip_wall(scope.metrics_snapshot()))
    assert out["fast"][0] == out["reference"][0], "result rows diverged"
    assert out["fast"][1] == out["reference"][1], "sim.* metrics diverged"


# --------------------------------------------------------------------- #
# scalar sampling fast path
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("kind", ["inverse_square", "inverse_linear", "uniform"])
def test_scalar_sample_is_bit_identical_to_rng_choice(kind):
    for k, p in ((8, 2), (64, 8), (128, 32)):
        dist = make_distribution(HeightLattice(k, p), kind)
        heights = np.asarray(dist.lattice.heights, dtype=np.int64)
        probs = np.asarray(dist.pmf, dtype=np.float64)
        rng_a = np.random.default_rng(1234)
        rng_b = np.random.default_rng(1234)
        draws_fast = [dist.sample(rng_a) for _ in range(500)]
        draws_ref = [int(rng_b.choice(heights, p=probs)) for _ in range(500)]
        assert draws_fast == draws_ref
