"""Tests for marking algorithms and the canonical phase partition."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.paging import LRUCache, belady_faults
from repro.paging.marking import MarkingCache, RandomMarkCache, phase_partition
from repro.paging.policies import make_policy


def rng(seed=0):
    return np.random.default_rng(seed)


@st.composite
def request_sequences(draw):
    n_pages = draw(st.integers(min_value=1, max_value=10))
    return draw(st.lists(st.integers(min_value=0, max_value=n_pages - 1), max_size=150))


class TestPhasePartition:
    def test_empty(self):
        assert phase_partition([], 3) == []

    def test_single_phase(self):
        assert phase_partition([1, 2, 1, 2], 2) == [0]

    def test_boundary_on_k_plus_first_distinct(self):
        # capacity 2: phase 1 = {1,2}, new phase starts at the request to 3
        assert phase_partition([1, 2, 1, 3, 4, 3], 2) == [0, 3]

    def test_repeated_single_page(self):
        assert phase_partition([5] * 10, 3) == [0]

    @given(request_sequences(), st.integers(1, 5))
    @settings(max_examples=100)
    def test_each_phase_has_at_most_k_distinct(self, seq, k):
        starts = phase_partition(seq, k)
        bounds = starts + [len(seq)]
        for a, b in zip(bounds, bounds[1:]):
            assert len(set(seq[a:b])) <= k

    @given(request_sequences(), st.integers(1, 5))
    @settings(max_examples=100)
    def test_phases_are_maximal(self, seq, k):
        """Extending any phase by its following request would exceed k
        distinct pages (that is what makes the partition canonical)."""
        starts = phase_partition(seq, k)
        bounds = starts + [len(seq)]
        for i in range(len(starts) - 1):
            a, b = bounds[i], bounds[i + 1]
            assert len(set(seq[a : b + 1])) == k + 1


class TestMarkingCache:
    def test_validation(self):
        with pytest.raises(ValueError):
            MarkingCache(0)

    def test_registered(self):
        policy = make_policy("marking", 4)
        assert isinstance(policy, MarkingCache)

    def test_basic_hit_miss(self):
        c = MarkingCache(2)
        assert not c.touch(1)
        assert c.touch(1)
        assert not c.touch(2)
        assert not c.touch(3)  # evicts an unmarked... all marked -> phase reset
        assert c.phases == 1

    def test_never_evicts_marked_within_phase(self):
        c = MarkingCache(3)
        for page in (1, 2, 1, 2):  # 1 and 2 marked
            c.touch(page)
        c.touch(3)  # fills cache, marks 3
        assert len(c) == 3
        c.touch(4)  # phase boundary: unmark, evict one, admit 4
        assert 4 in c
        assert len(c) == 3

    def test_phase_count_matches_partition(self):
        seq = [1, 2, 3, 4, 1, 2, 5, 6, 7, 1]
        k = 3
        c = MarkingCache(k)
        for page in seq:
            c.touch(page)
        assert c.phases == len(phase_partition(seq, k)) - 1

    @given(request_sequences(), st.integers(1, 6))
    @settings(max_examples=100)
    def test_capacity_and_counters(self, seq, k):
        c = MarkingCache(k)
        for page in seq:
            c.touch(page)
            assert len(c) <= k
        assert c.hits + c.faults == len(seq)

    @given(request_sequences(), st.integers(1, 6))
    @settings(max_examples=100)
    def test_k_competitive_vs_belady(self, seq, k):
        """Any marking algorithm faults at most k·OPT(k) + k per sequence."""
        c = MarkingCache(k)
        for page in seq:
            c.touch(page)
        opt = belady_faults(seq, k)
        assert c.faults <= k * opt + k

    @given(request_sequences(), st.integers(1, 6))
    @settings(max_examples=75)
    def test_lru_is_a_marking_algorithm(self, seq, k):
        """LRU never faults more than k times per canonical phase."""
        starts = phase_partition(seq, k)
        bounds = starts + [len(seq)]
        lru = LRUCache(k)
        fault_positions = []
        for i, page in enumerate(seq):
            if not lru.touch(page):
                fault_positions.append(i)
        for a, b in zip(bounds, bounds[1:]):
            assert sum(1 for f in fault_positions if a <= f < b) <= k


class TestRandomMark:
    def test_deterministic_given_seed(self):
        seq = [1, 2, 3, 4, 1, 5, 2, 6] * 5
        a = RandomMarkCache(3, rng(9))
        b = RandomMarkCache(3, rng(9))
        for page in seq:
            assert a.touch(page) == b.touch(page)
        assert a.faults == b.faults

    @given(request_sequences(), st.integers(1, 6))
    @settings(max_examples=75)
    def test_capacity_and_counters(self, seq, k):
        c = RandomMarkCache(k, rng(1))
        for page in seq:
            c.touch(page)
            assert len(c) <= k
        assert c.hits + c.faults == len(seq)

    def test_mark_beats_deterministic_on_cycle(self):
        """On the (k+1)-cycle MARK faults ~H_k per phase vs k for LRU."""
        k = 8
        seq = list(range(k + 1)) * 60
        lru = LRUCache(k)
        for page in seq:
            lru.touch(page)
        mark_faults = []
        for seed in range(5):
            m = RandomMarkCache(k, rng(seed))
            for page in seq:
                m.touch(page)
            mark_faults.append(m.faults)
        assert np.mean(mark_faults) < 0.75 * lru.faults

    @given(request_sequences(), st.integers(1, 5))
    @settings(max_examples=50)
    def test_faults_within_marking_bound(self, seq, k):
        c = RandomMarkCache(k, rng(3))
        for page in seq:
            c.touch(page)
        opt = belady_faults(seq, k)
        assert c.faults <= k * opt + k
