"""Tests for the LFU policy."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.paging import LRUCache, make_policy
from repro.paging.lfu import LFUCache


class TestBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            LFUCache(0)

    def test_registered(self):
        assert isinstance(make_policy("lfu", 4), LFUCache)

    def test_evicts_least_frequent(self):
        c = LFUCache(2)
        c.touch(1)
        c.touch(1)
        c.touch(2)
        c.touch(3)  # evicts 2 (count 1) not 1 (count 2)
        assert 1 in c and 3 in c and 2 not in c

    def test_tie_break_is_least_recent(self):
        c = LFUCache(2)
        c.touch(1)
        c.touch(2)  # both count 1; 1 is older
        c.touch(3)
        assert 1 not in c and 2 in c

    def test_frequency_tracking(self):
        c = LFUCache(3)
        for _ in range(5):
            c.touch(7)
        assert c.frequency_of(7) == 5
        assert c.frequency_of(99) == 0

    def test_clear_and_reset(self):
        c = LFUCache(2)
        c.touch(1)
        c.clear()
        assert len(c) == 0
        assert c.faults == 1
        c.reset_counters()
        assert c.faults == 0

    def test_frequency_squatting(self):
        """The classic LFU pathology: a formerly-hot page squats while the
        new working set thrashes around it."""
        c = LFUCache(2)
        for _ in range(50):
            c.touch(0)  # page 0 becomes very hot
        for page in (1, 2, 1, 2, 1, 2):
            c.touch(page)  # shifted working set {1,2} cannot both fit
        assert 0 in c  # the squatter survives on stale counts
        assert c.hits < 50 + 3


@st.composite
def request_sequences(draw):
    n_pages = draw(st.integers(1, 10))
    return draw(st.lists(st.integers(0, n_pages - 1), max_size=150))


class TestProperties:
    @given(request_sequences(), st.integers(1, 6))
    @settings(max_examples=100)
    def test_capacity_and_counters(self, seq, capacity):
        c = LFUCache(capacity)
        for page in seq:
            c.touch(page)
            assert len(c) <= capacity
        assert c.hits + c.faults == len(seq)

    @given(request_sequences())
    @settings(max_examples=50)
    def test_matches_lru_when_everything_fits(self, seq):
        capacity = max(1, len(set(seq)))
        lfu, lru = LFUCache(capacity), LRUCache(capacity)
        for page in seq:
            lfu.touch(page)
            lru.touch(page)
        assert lfu.faults == lru.faults == len(set(seq))

    def test_beats_lru_on_skewed_traffic(self):
        """Zipf with a shifting cold tail: frequency wins over recency."""
        rng = np.random.default_rng(0)
        hot = rng.integers(0, 4, size=6000)
        cold = np.arange(6000) + 100  # one-shot scans evict LRU's hot set
        mask = rng.random(6000) < 0.7
        seq = np.where(mask, hot, cold)
        lfu, lru = LFUCache(8), LRUCache(8)
        for page in seq:
            lfu.touch(int(page))
            lru.touch(int(page))
        assert lfu.hits > lru.hits
