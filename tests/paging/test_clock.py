"""Tests for the CLOCK (second-chance) policy."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.paging import ClockCache, LRUCache, belady_faults, make_policy


class TestBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClockCache(0)

    def test_registered(self):
        assert isinstance(make_policy("clock", 4), ClockCache)

    def test_hit_sets_reference_bit(self):
        c = ClockCache(2)
        c.touch(1)
        c.touch(2)
        c.touch(1)  # re-reference 1
        c.touch(3)  # sweep: 1 and 2 referenced -> cleared; evicts 1? hand order matters
        assert len(c) == 2
        assert 3 in c

    def test_second_chance_protects_rereferenced(self):
        c = ClockCache(3)
        for page in (1, 2, 3):
            c.touch(page)
        c.touch(1)  # 1 gets a second chance
        c.touch(4)  # sweep clears bits; eviction happens among older pages
        assert 4 in c
        assert len(c) == 3

    def test_clear(self):
        c = ClockCache(2)
        c.touch(1)
        c.clear()
        assert len(c) == 0 and 1 not in c
        assert not c.touch(1)

    def test_reset_counters(self):
        c = ClockCache(2)
        c.touch(1)
        c.reset_counters()
        assert c.faults == 0 and 1 in c


@st.composite
def request_sequences(draw):
    n_pages = draw(st.integers(1, 10))
    return draw(st.lists(st.integers(0, n_pages - 1), max_size=150))


class TestProperties:
    @given(request_sequences(), st.integers(1, 6))
    @settings(max_examples=100)
    def test_capacity_and_counters(self, seq, capacity):
        c = ClockCache(capacity)
        for page in seq:
            c.touch(page)
            assert len(c) <= capacity
        assert c.hits + c.faults == len(seq)

    @given(request_sequences(), st.integers(1, 6))
    @settings(max_examples=75)
    def test_k_competitive(self, seq, capacity):
        """CLOCK is a marking-style algorithm: faults <= k*OPT + k."""
        c = ClockCache(capacity)
        for page in seq:
            c.touch(page)
        assert c.faults <= capacity * belady_faults(seq, capacity) + capacity

    @given(request_sequences())
    @settings(max_examples=50)
    def test_no_evictions_when_everything_fits(self, seq):
        capacity = max(1, len(set(seq)))
        c = ClockCache(capacity)
        lru = LRUCache(capacity)
        for page in seq:
            c.touch(page)
            lru.touch(page)
        assert c.faults == lru.faults == len(set(seq))

    def test_approximates_lru_on_skewed_traffic(self):
        """On a hot/cold mix CLOCK's fault count lands near LRU's."""
        import numpy as np

        rng = np.random.default_rng(0)
        hot = rng.integers(0, 8, size=4000)
        cold = rng.integers(8, 512, size=4000)
        seq = np.where(rng.random(4000) < 0.85, hot, cold)
        clock = ClockCache(32)
        lru = LRUCache(32)
        for page in seq:
            clock.touch(int(page))
            lru.touch(int(page))
        assert clock.faults <= 1.25 * lru.faults
