"""``REPRO_KERNEL=native`` must be bit-identical to fast and reference.

The native tier (numba when importable, else a cc-compiled shared
library, else a graceful fallback to the numpy fast path) re-implements
the three inner loops of the paging kernel: the reuse-distance sweep,
the per-box service walk, and the offline green DP.  Its only contract
is *exactness*: every observable — box endpoints, hit/fault splits,
ladder plans, DP distances and parents — must equal the numpy fast path
and the dict-LRU reference bit for bit.  These tests pin that
three-way equivalence property-style (random boxes, ladders via the
offline DP on non-power-of-two lattices, streamed chunk appends with
compaction) plus the operational surface: backend selection, the
``$REPRO_NATIVE`` flavor pin, and the no-compiler fallback.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.box import HeightLattice
from repro.green.offline import optimal_box_profile
from repro.paging._native import NATIVE_ENV, clear_native_cache, native_ops
from repro.paging.engine import run_box
from repro.paging.kernel import (
    KERNEL_ENV,
    SequenceKernel,
    StreamKernel,
    clear_kernel_cache,
    kernel_backend,
    native_flavor,
    run_box_fast,
)

HAVE_NATIVE = native_flavor() is not None

requires_native = pytest.mark.skipif(
    not HAVE_NATIVE, reason="no native flavor available (neither numba nor cc)"
)


@contextmanager
def backend(value: str, native: str | None = None):
    """Temporarily pin ``$REPRO_KERNEL`` (and optionally ``$REPRO_NATIVE``).

    A context manager instead of monkeypatch so hypothesis-driven tests
    can flip backends per example; kernels capture their backend at
    construction, so the cache is cleared on entry and exit.
    """
    saved = {k: os.environ.get(k) for k in (KERNEL_ENV, NATIVE_ENV)}
    os.environ[KERNEL_ENV] = value
    if native is not None:
        os.environ[NATIVE_ENV] = native
        clear_native_cache()
    clear_kernel_cache()
    try:
        yield
    finally:
        for k, v in saved.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v
        if native is not None:
            clear_native_cache()
        clear_kernel_cache()


# --------------------------------------------------------------------- #
# backend selection and flavor pinning
# --------------------------------------------------------------------- #


class TestBackendSelection:
    def test_native_resolves_to_native_or_fast(self):
        with backend("native"):
            assert kernel_backend() == ("native" if HAVE_NATIVE else "fast")

    def test_compiled_alias(self):
        with backend("compiled"):
            assert kernel_backend() == ("native" if HAVE_NATIVE else "fast")

    def test_native_off_forces_fallback_to_fast(self):
        with backend("native", native="off"):
            assert native_flavor() is None
            assert kernel_backend() == "fast"

    def test_invalid_backend_rejected(self):
        with backend("turbo"):
            with pytest.raises(ValueError, match="REPRO_KERNEL"):
                kernel_backend()

    def test_invalid_flavor_pin_rejected(self):
        saved = os.environ.get(NATIVE_ENV)
        os.environ[NATIVE_ENV] = "gpu"
        clear_native_cache()
        try:
            with pytest.raises(ValueError, match="REPRO_NATIVE"):
                native_ops()
        finally:
            if saved is None:
                os.environ.pop(NATIVE_ENV, None)
            else:
                os.environ[NATIVE_ENV] = saved
            clear_native_cache()

    @requires_native
    def test_flavor_pin_is_honored(self):
        flavor = native_flavor()
        with backend("native", native=flavor):
            assert native_flavor() == flavor

    @requires_native
    def test_native_kernel_carries_compiled_ops(self):
        with backend("native"):
            kern = SequenceKernel(np.arange(8, dtype=np.int64))
            assert kern._ops is not None
        with backend("fast"):
            kern = SequenceKernel(np.arange(8, dtype=np.int64))
            assert kern._ops is None

    def test_off_kernel_still_correct(self):
        # fallback is not just "doesn't crash": it is the numpy fast path
        arr = np.asarray([0, 1, 2, 0, 1, 3] * 10, dtype=np.int64)
        with backend("native", native="off"):
            kern = SequenceKernel(arr)
            got = run_box_fast(kern, 0, 3, 40, 5)
        assert got == run_box(arr, 0, 3, 40, 5)


# --------------------------------------------------------------------- #
# property: native ≡ fast ≡ reference on random boxes
# --------------------------------------------------------------------- #

sequences = st.lists(st.integers(min_value=0, max_value=12), min_size=0, max_size=160)


@requires_native
@given(
    seq=sequences,
    start_frac=st.floats(min_value=0.0, max_value=1.0),
    height=st.integers(min_value=1, max_value=20),
    budget=st.integers(min_value=0, max_value=400),
    miss_cost=st.integers(min_value=2, max_value=9),
)
@settings(max_examples=200, deadline=None)
def test_native_box_three_way_identical(seq, start_frac, height, budget, miss_cost):
    arr = np.asarray(seq, dtype=np.int64)
    start = int(start_frac * len(arr))  # includes start == n
    with backend("native"):
        native_run = run_box_fast(SequenceKernel(arr), start, height, budget, miss_cost)
    with backend("fast"):
        fast_run = run_box_fast(SequenceKernel(arr), start, height, budget, miss_cost)
    assert native_run == fast_run
    assert native_run == run_box(arr, start, height, budget, miss_cost)


@requires_native
@given(
    seq=st.lists(st.integers(min_value=0, max_value=8), min_size=1, max_size=120),
    chunks=st.lists(st.integers(min_value=1, max_value=30), min_size=1, max_size=12),
    probes=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=0.99),
            st.integers(min_value=1, max_value=10),
            st.integers(min_value=0, max_value=80),
        ),
        min_size=1,
        max_size=6,
    ),
    miss_cost=st.sampled_from([2, 5, 8]),
)
@settings(max_examples=100, deadline=None)
def test_native_stream_kernel_identical_across_chunked_appends(
    seq, chunks, probes, miss_cost
):
    """Streamed appends + boxes + compaction, native vs fast, same answers.

    Both kernels see the same chunk boundaries and the same interleaved
    box/compact schedule; every box must agree, including boxes evaluated
    after ``compact`` re-based the window.
    """
    arr = np.asarray(seq, dtype=np.int64)

    def play(backend_name):
        with backend(backend_name):
            sk = StreamKernel()
            runs = []
            i = 0
            ci = 0
            while i < len(arr):
                step = chunks[ci % len(chunks)]
                ci += 1
                sk.append(arr[i : i + step])
                i += step
                for frac, height, budget in probes:
                    start = sk.base + int(frac * (sk.end - sk.base))
                    runs.append(tuple(sk.box(start, height, budget, miss_cost)))
                # compact behind the median probe position to exercise the
                # re-based window on the next round
                mid = sk.base + (sk.end - sk.base) // 2
                sk.compact(mid)
            return runs

    assert play("native") == play("fast")


# --------------------------------------------------------------------- #
# property: ladders + offline DP on non-power-of-two lattices
# --------------------------------------------------------------------- #


@requires_native
@given(
    seed=st.integers(0, 10**6),
    k=st.integers(min_value=3, max_value=24),
    p_frac=st.floats(min_value=0.0, max_value=1.0),
    s=st.sampled_from([2, 4, 7]),
    n=st.integers(min_value=10, max_value=220),
)
@settings(max_examples=60, deadline=None)
def test_native_offline_dp_three_way_identical(seed, k, p_frac, s, n):
    """The whole DP pipeline — ladder plans included — is bit-identical.

    ``optimal_box_profile`` exercises every native primitive at once
    (reuse sweep, ladder/block probes, DP relaxation); k and p are *not*
    restricted to powers of two.
    """
    p = 1 + int(p_frac * (k - 1))  # any 1 <= p <= k, non-power-of-two included
    lattice = HeightLattice(k, p)
    rng = np.random.default_rng(seed)
    seq = rng.integers(0, max(2, k), size=n).astype(np.int64)

    def solve(backend_name):
        with backend(backend_name):
            res = optimal_box_profile(seq, lattice, s)
            return res.impact, tuple(res.profile), res.distances.tolist()

    native = solve("native")
    assert native == solve("fast")
    assert native == solve("reference")
