"""Tests for Mattson stack distances and miss-ratio curves."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.paging import Fenwick, LRUCache, lru_faults_all_sizes, miss_ratio_curve, stack_distances


class TestFenwick:
    def test_prefix_sums(self):
        f = Fenwick(10)
        f.add(0, 5)
        f.add(4, 2)
        f.add(9, 1)
        assert f.prefix_sum(0) == 5
        assert f.prefix_sum(3) == 5
        assert f.prefix_sum(4) == 7
        assert f.prefix_sum(9) == 8

    def test_range_sum(self):
        f = Fenwick(8)
        for i in range(8):
            f.add(i, 1)
        assert f.range_sum(2, 5) == 4
        assert f.range_sum(5, 2) == 0
        assert f.range_sum(0, 7) == 8

    @given(st.lists(st.tuples(st.integers(0, 19), st.integers(-5, 5)), max_size=60))
    @settings(max_examples=100)
    def test_matches_naive_array(self, updates):
        f = Fenwick(20)
        ref = np.zeros(20, dtype=np.int64)
        for i, d in updates:
            f.add(i, d)
            ref[i] += d
        for lo in range(0, 20, 3):
            for hi in range(lo, 20, 4):
                assert f.range_sum(lo, hi) == int(ref[lo : hi + 1].sum())


class TestStackDistances:
    def test_cold_accesses_are_zero(self):
        assert stack_distances([1, 2, 3]).tolist() == [0, 0, 0]

    def test_immediate_reuse(self):
        assert stack_distances([1, 1]).tolist() == [0, 1]

    def test_classic_example(self):
        # distances: a:0 b:0 c:0 a:3 (c,b,a distinct) b:3 c:3
        assert stack_distances([1, 2, 3, 1, 2, 3]).tolist() == [0, 0, 0, 3, 3, 3]

    def test_repeated_page_between(self):
        # 1, 2, 2, 1 -> last request to 1 sees {2,1} distinct = 2
        assert stack_distances([1, 2, 2, 1]).tolist() == [0, 0, 1, 2]

    def _naive(self, seq):
        out = []
        last = {}
        for i, page in enumerate(seq):
            if page not in last:
                out.append(0)
            else:
                out.append(len(set(seq[last[page] : i])))
            last[page] = i
        return out

    @given(st.lists(st.integers(min_value=0, max_value=9), max_size=150))
    @settings(max_examples=150)
    def test_matches_naive(self, seq):
        assert stack_distances(seq).tolist() == self._naive(seq)


class TestMissRatioCurve:
    def test_rejects_capacity_zero(self):
        curve = miss_ratio_curve([1, 2, 1])
        with pytest.raises(ValueError):
            curve.miss_ratio(0)

    def test_empty_sequence(self):
        curve = miss_ratio_curve([])
        assert curve.n == 0 and curve.cold == 0
        assert curve.miss_ratio(1) == 0.0

    def test_cycle_curve(self):
        seq = [0, 1, 2, 3] * 10
        curve = miss_ratio_curve(seq, max_capacity=6)
        assert curve.fault_count(4) == 4  # fits: cold misses only
        assert curve.fault_count(3) == len(seq)  # LRU thrashes
        assert curve.fault_count(6) == 4

    @given(st.lists(st.integers(min_value=0, max_value=7), max_size=120), st.integers(1, 10))
    @settings(max_examples=150)
    def test_matches_direct_lru_simulation(self, seq, capacity):
        curve = miss_ratio_curve(seq, max_capacity=capacity)
        lru = LRUCache(capacity)
        for page in seq:
            lru.touch(page)
        assert curve.fault_count(capacity) == lru.faults

    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=100))
    @settings(max_examples=75)
    def test_curve_monotone_nonincreasing(self, seq):
        curve = miss_ratio_curve(seq, max_capacity=10)
        faults = curve.faults[1:]
        assert all(faults[i] >= faults[i + 1] for i in range(len(faults) - 1))

    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=100))
    @settings(max_examples=50)
    def test_cold_misses_floor(self, seq):
        curve = miss_ratio_curve(seq, max_capacity=12)
        assert curve.cold == len(set(seq))
        assert curve.fault_count(12) >= curve.cold

    def test_all_sizes_helper(self):
        seq = [0, 1, 0, 2, 0, 1]
        counts = lru_faults_all_sizes(seq, [1, 2, 3])
        for c, expected in counts.items():
            lru = LRUCache(c)
            for page in seq:
                lru.touch(page)
            assert expected == lru.faults
