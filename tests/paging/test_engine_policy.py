"""Tests for policy-generic and MIN-in-box execution."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.paging import FIFOCache, LRUCache, run_box
from repro.paging.engine_policy import run_box_min, run_box_policy
from repro.paging.marking import MarkingCache
from repro.workloads import cyclic, scan


def arr(xs):
    return np.asarray(xs, dtype=np.int64)


@st.composite
def box_cases(draw):
    n_pages = draw(st.integers(1, 8))
    seq = draw(st.lists(st.integers(0, n_pages - 1), min_size=1, max_size=100))
    height = draw(st.integers(1, 8))
    s = draw(st.integers(2, 10))
    budget = draw(st.integers(0, 2 * s * height))
    start = draw(st.integers(0, len(seq)))
    return arr(seq), start, height, budget, s


class TestRunBoxPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            run_box_policy(arr([1]), 0, LRUCache(2), 10, 1)

    @given(box_cases())
    @settings(max_examples=150)
    def test_lru_policy_matches_fast_path(self, case):
        """run_box_policy(LRUCache) must agree exactly with run_box."""
        seq, start, height, budget, s = case
        fast = run_box(seq, start, height, budget, s)
        slow = run_box_policy(seq, start, LRUCache(height), budget, s)
        assert (fast.end, fast.hits, fast.faults, fast.time_used) == (
            slow.end,
            slow.hits,
            slow.faults,
            slow.time_used,
        )

    @given(box_cases())
    @settings(max_examples=75)
    def test_fifo_and_marking_satisfy_accounting(self, case):
        seq, start, height, budget, s = case
        for policy in (FIFOCache(height), MarkingCache(height)):
            r = run_box_policy(seq, start, policy, budget, s)
            assert r.hits + r.faults == r.served
            assert r.time_used == r.hits + s * r.faults <= budget
            assert start <= r.end <= len(seq)

    def test_policy_cleared_before_run(self):
        cache = LRUCache(2)
        cache.touch(99)
        r = run_box_policy(arr([99]), 0, cache, 100, 5)
        assert r.faults == 1  # 99 must not be warm


class TestRunBoxMin:
    def test_validation(self):
        with pytest.raises(ValueError):
            run_box_min(arr([1]), 0, 0, 10, 5)
        with pytest.raises(ValueError):
            run_box_min(arr([1]), 0, 1, 10, 1)

    @given(box_cases())
    @settings(max_examples=120)
    def test_min_never_behind_lru(self, case):
        """In-box MIN serves at least as many requests as in-box LRU."""
        seq, start, height, budget, s = case
        lru = run_box(seq, start, height, budget, s)
        opt = run_box_min(seq, start, height, budget, s)
        assert opt.end >= lru.end
        assert opt.hits + opt.faults == opt.served
        assert opt.time_used <= budget

    def test_min_beats_lru_on_sliding_cycle(self):
        """The classic (h+1)-cycle: LRU thrashes, MIN pins h-1 pages."""
        seq = arr([0, 1, 2, 3] * 30)
        s = 10
        height = 3
        budget = 40 * s
        lru = run_box(seq, 0, height, budget, s)
        opt = run_box_min(seq, 0, height, budget, s)
        assert opt.served > lru.served

    def test_matches_lru_when_everything_fits(self):
        seq = arr([0, 1, 2] * 20)
        s = 8
        r1 = run_box(seq, 0, 3, 3 * 8 * 20, s)
        r2 = run_box_min(seq, 0, 3, 3 * 8 * 20, s)
        assert r1.served == r2.served

    def test_start_offset(self):
        seq = arr([5, 6, 7, 8])
        r = run_box_min(seq, 2, 4, 100, 5)
        assert r.start == 2 and r.end == 4 and r.faults == 2

    @given(box_cases())
    @settings(max_examples=50)
    def test_min_in_box_gap_is_bounded(self, case):
        """The WLOG absorbs the in-box LRU/MIN gap into O(1): with doubled
        height LRU catches up to MIN (inclusion + augmentation folklore)."""
        seq, start, height, budget, s = case
        opt = run_box_min(seq, start, height, budget, s)
        lru2 = run_box(seq, start, 2 * height, budget, s)
        assert lru2.end >= opt.end or lru2.served >= opt.served
