"""Tests for Belady's MIN (offline optimal replacement)."""

from __future__ import annotations

from itertools import product

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.paging import BeladySimulation, LRUCache, belady_faults, min_service_time, next_use_indices


class TestNextUse:
    def test_simple(self):
        seq = [1, 2, 1, 3, 2]
        nxt = next_use_indices(seq)
        assert nxt.tolist() == [2, 4, 5, 5, 5]

    def test_empty(self):
        assert next_use_indices([]).tolist() == []

    def test_all_same_page(self):
        nxt = next_use_indices([9, 9, 9])
        assert nxt.tolist() == [1, 2, 3]

    def test_all_distinct(self):
        nxt = next_use_indices([1, 2, 3])
        assert nxt.tolist() == [3, 3, 3]


def _brute_force_min_faults(seq, capacity):
    """Exhaustive optimal faults via BFS over cache-content states.

    Exponential; only for tiny instances.  Demand paging with free choice of
    victim is optimal among all strategies for fault minimization, so this
    is a genuine OPT oracle.
    """
    from functools import lru_cache

    seq = tuple(seq)
    n = len(seq)

    @lru_cache(maxsize=None)
    def go(i, contents):
        if i == n:
            return 0
        page = seq[i]
        if page in contents:
            return go(i + 1, contents)
        # fault: try every eviction choice (or none if not full)
        base = set(contents)
        if len(base) < capacity:
            return 1 + go(i + 1, tuple(sorted(base | {page})))
        best = None
        for victim in base:
            cand = 1 + go(i + 1, tuple(sorted((base - {victim}) | {page})))
            if best is None or cand < best:
                best = cand
        return best

    return go(0, ())


class TestBelady:
    def test_no_reuse_all_faults(self):
        assert belady_faults(list(range(10)), 3) == 10

    def test_cycle_fits(self):
        seq = [0, 1, 2] * 5
        assert belady_faults(seq, 3) == 3

    def test_cycle_too_big_beats_lru(self):
        """On a size-(c+1) cycle MIN faults ~n/c of the time; LRU thrashes."""
        seq = [0, 1, 2, 3] * 12
        lru = LRUCache(3)
        for page in seq:
            lru.touch(page)
        opt = belady_faults(seq, 3)
        assert lru.faults == len(seq)
        assert opt < lru.faults
        # MIN keeps 2 of the 4 pages pinned; one fault per 2 requests + warmup
        assert opt <= len(seq) // 2 + 3

    def test_textbook_example(self):
        seq = [7, 0, 1, 2, 0, 3, 0, 4, 2, 3, 0, 3, 2, 1, 2, 0, 1, 7, 0, 1]
        assert belady_faults(seq, 3) == 9  # classical OS-textbook answer

    def test_step_matches_run(self):
        seq = [1, 2, 3, 1, 4, 2, 5, 1, 2, 3]
        stepped = BeladySimulation(seq, 2)
        outcomes = []
        while not stepped.done():
            outcomes.append(stepped.step())
        ran = BeladySimulation(seq, 2)
        ran.run()
        assert stepped.faults == ran.faults
        assert stepped.hits == ran.hits
        assert outcomes.count(False) == stepped.faults

    def test_step_past_end_raises(self):
        sim = BeladySimulation([1], 1)
        sim.run()
        with pytest.raises(IndexError):
            sim.step()

    def test_partial_run_limit(self):
        sim = BeladySimulation([1, 2, 3, 1], 2)
        sim.run(limit=2)
        assert sim.pos == 2
        sim.run()
        assert sim.done()

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BeladySimulation([1], 0)

    def test_exhaustive_small_instances(self):
        """MIN matches brute-force OPT on every tiny instance."""
        for n, pages, capacity in [(6, 3, 2), (7, 4, 2), (6, 4, 3)]:
            for seq in product(range(pages), repeat=n):
                assert belady_faults(list(seq), capacity) == _brute_force_min_faults(seq, capacity), seq


@st.composite
def request_sequences(draw):
    n_pages = draw(st.integers(min_value=1, max_value=8))
    return draw(st.lists(st.integers(min_value=0, max_value=n_pages - 1), max_size=120))


class TestProperties:
    @given(request_sequences(), st.integers(min_value=1, max_value=6))
    @settings(max_examples=150)
    def test_belady_never_worse_than_lru(self, seq, capacity):
        lru = LRUCache(capacity)
        for page in seq:
            lru.touch(page)
        assert belady_faults(seq, capacity) <= lru.faults

    @given(request_sequences(), st.integers(min_value=1, max_value=6))
    @settings(max_examples=100)
    def test_faults_at_least_distinct_cold_misses(self, seq, capacity):
        f = belady_faults(seq, capacity)
        assert f >= min(len(set(seq)), 1) if seq else f == 0
        assert f >= len(set(seq)) - 0 if capacity >= len(set(seq)) else True

    @given(request_sequences(), st.integers(min_value=1, max_value=5))
    @settings(max_examples=100)
    def test_faults_monotone_in_capacity(self, seq, capacity):
        """No Belady anomaly for Belady itself: OPT faults decrease with capacity."""
        assert belady_faults(seq, capacity) >= belady_faults(seq, capacity + 1)

    @given(request_sequences(), st.integers(min_value=1, max_value=5))
    @settings(max_examples=50)
    def test_matches_brute_force(self, seq, capacity):
        if len(seq) > 12 or len(set(seq)) > 5:
            seq = seq[:12]
        assert belady_faults(seq, capacity) == _brute_force_min_faults(tuple(seq), capacity)

    @given(request_sequences(), st.integers(min_value=1, max_value=6), st.integers(min_value=2, max_value=9))
    @settings(max_examples=100)
    def test_min_service_time_formula(self, seq, capacity, s):
        f = belady_faults(seq, capacity)
        assert min_service_time(seq, capacity, s) == (len(seq) - f) + s * f

    @given(request_sequences())
    @settings(max_examples=50)
    def test_full_capacity_only_cold_misses(self, seq):
        capacity = max(1, len(set(seq)))
        assert belady_faults(seq, capacity) == len(set(seq))

    @given(request_sequences(), st.integers(min_value=1, max_value=6))
    @settings(max_examples=100)
    def test_resident_bounded_by_capacity(self, seq, capacity):
        sim = BeladySimulation(seq, capacity)
        while not sim.done():
            sim.step()
            assert len(sim.resident) <= capacity
