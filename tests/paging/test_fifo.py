"""Unit and property tests for the FIFO cache."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.paging import FIFOCache, LRUCache


class TestBasics:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            FIFOCache(0)

    def test_eviction_order_is_fifo_not_lru(self):
        c = FIFOCache(2)
        c.touch(1)
        c.touch(2)
        c.touch(1)  # hit: does NOT refresh FIFO position
        c.touch(3)  # evicts 1 (oldest arrival), unlike LRU which evicts 2
        assert 1 not in c and 2 in c and 3 in c

    def test_fifo_order(self):
        c = FIFOCache(3)
        for page in (5, 6, 7, 6):
            c.touch(page)
        assert c.pages_fifo_order() == [5, 6, 7]

    def test_clear(self):
        c = FIFOCache(2)
        c.touch(1)
        c.clear()
        assert len(c) == 0 and 1 not in c
        assert c.pages_fifo_order() == []

    def test_counters(self):
        c = FIFOCache(2)
        for page in (1, 2, 1, 3, 1):
            c.touch(page)
        # 1 miss, 2 miss, 1 hit, 3 miss evicting 1, 1 miss evicting 2
        assert c.faults == 4 and c.hits == 1 and c.evictions == 2

    def test_belady_anomaly_exists(self):
        """The classical sequence where FIFO with MORE capacity faults MORE.

        This is the canonical witness that FIFO lacks the inclusion
        property, and why the stack-distance machinery applies to LRU only.
        """
        seq = [1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5]
        f3 = FIFOCache(3)
        f4 = FIFOCache(4)
        for page in seq:
            f3.touch(page)
            f4.touch(page)
        assert f3.faults == 9
        assert f4.faults == 10
        assert f4.faults > f3.faults


@st.composite
def request_sequences(draw):
    n_pages = draw(st.integers(min_value=1, max_value=10))
    return draw(st.lists(st.integers(min_value=0, max_value=n_pages - 1), max_size=150))


class TestProperties:
    @given(request_sequences(), st.integers(min_value=1, max_value=6))
    @settings(max_examples=100)
    def test_capacity_respected_and_counts_add_up(self, seq, capacity):
        c = FIFOCache(capacity)
        for page in seq:
            c.touch(page)
            assert len(c) <= capacity
        assert c.hits + c.faults == len(seq)

    @given(request_sequences(), st.integers(min_value=1, max_value=6))
    @settings(max_examples=100)
    def test_queue_and_set_agree(self, seq, capacity):
        c = FIFOCache(capacity)
        for page in seq:
            c.touch(page)
        order = c.pages_fifo_order()
        assert len(order) == len(set(order)) == len(c)
        assert all(page in c for page in order)

    @given(request_sequences())
    @settings(max_examples=50)
    def test_fifo_equals_lru_when_everything_fits(self, seq):
        """With capacity >= #distinct pages, no evictions: FIFO == LRU counts."""
        capacity = max(1, len(set(seq)))
        f = FIFOCache(capacity)
        l = LRUCache(capacity)
        for page in seq:
            f.touch(page)
            l.touch(page)
        assert f.faults == l.faults == len(set(seq))
