"""Tests for the box execution engine (the hot path of the reproduction)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.paging import LRUCache, box_budget, execute_profile, run_box


def arr(xs):
    return np.asarray(xs, dtype=np.int64)


class TestRunBoxBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            run_box(arr([1]), 0, 0, 10, 5)
        with pytest.raises(ValueError):
            run_box(arr([1]), 0, 1, 10, 1)

    def test_empty_remainder(self):
        r = run_box(arr([1, 2]), 2, 4, 40, 10)
        assert r.served == 0 and r.time_used == 0 and r.end == 2

    def test_single_miss(self):
        r = run_box(arr([5]), 0, 1, box_budget(1, 10), 10)
        assert r.faults == 1 and r.hits == 0
        assert r.time_used == 10
        assert r.end == 1

    def test_budget_cuts_off_miss(self):
        # budget 9 < miss cost 10: nothing can be served
        r = run_box(arr([5, 5]), 0, 1, 9, 10)
        assert r.served == 0 and r.time_used == 0

    def test_hit_after_miss(self):
        r = run_box(arr([5, 5, 5]), 0, 1, 12, 10)
        # miss (10) + hit (1) + hit (1) = 12 exactly
        assert r.served == 3 and r.faults == 1 and r.hits == 2
        assert r.time_used == 12

    def test_budget_boundary_exact(self):
        r = run_box(arr([5, 5]), 0, 1, 11, 10)
        assert r.served == 2 and r.time_used == 11
        r = run_box(arr([5, 5]), 0, 1, 10, 10)
        assert r.served == 1 and r.time_used == 10

    def test_cycle_within_height(self):
        # height 3 box over cycle of 3 pages: 3 misses then all hits
        seq = arr([0, 1, 2] * 20)
        s = 10
        r = run_box(seq, 0, 3, box_budget(3, s), s)
        assert r.faults == 3
        # budget 30: misses use 30 exactly, so zero hits fit
        assert r.served == 3

    def test_cycle_thrashing_when_too_small(self):
        # height 2 over cycle of 3: LRU misses every request
        seq = arr([0, 1, 2] * 20)
        s = 10
        r = run_box(seq, 0, 2, box_budget(2, s), s)
        assert r.hits == 0
        assert r.served == 2  # two misses fill the 20-unit budget

    def test_stalled_accounting(self):
        seq = arr([7])
        r = run_box(seq, 0, 4, box_budget(4, 10), 10)
        assert r.time_used == 10
        assert r.stalled == 30

    def test_start_offset(self):
        seq = arr([1, 2, 3, 4])
        r = run_box(seq, 2, 4, 100, 5)
        assert r.start == 2 and r.end == 4 and r.faults == 2

    def test_fresh_cold_start_each_call(self):
        seq = arr([9, 9])
        r1 = run_box(seq, 0, 1, 10, 10)
        assert r1.end == 1
        # second box starts cold: position 1's request misses again
        r2 = run_box(seq, r1.end, 1, 10, 10)
        assert r2.faults == 1


@st.composite
def boxes_case(draw):
    n_pages = draw(st.integers(min_value=1, max_value=8))
    seq = draw(st.lists(st.integers(min_value=0, max_value=n_pages - 1), min_size=1, max_size=120))
    height = draw(st.integers(min_value=1, max_value=10))
    s = draw(st.integers(min_value=2, max_value=12))
    budget = draw(st.integers(min_value=0, max_value=3 * s * height))
    start = draw(st.integers(min_value=0, max_value=len(seq)))
    return arr(seq), start, height, budget, s


class TestRunBoxProperties:
    @given(boxes_case())
    @settings(max_examples=200)
    def test_matches_lru_cache_reference(self, case):
        """The inline LRU must agree with LRUCache served request by request."""
        seq, start, height, budget, s = case
        r = run_box(seq, start, height, budget, s)
        ref = LRUCache(height)
        t = 0
        pos = start
        hits = faults = 0
        while pos < len(seq):
            cost = 1 if int(seq[pos]) in ref else s
            if t + cost > budget:
                break
            # touch mutates; outcome must agree with membership probe
            outcome = ref.touch(int(seq[pos]))
            assert outcome == (cost == 1)
            t += cost
            if outcome:
                hits += 1
            else:
                faults += 1
            pos += 1
        assert (r.end, r.hits, r.faults, r.time_used) == (pos, hits, faults, t)

    @given(boxes_case())
    @settings(max_examples=150)
    def test_accounting_invariants(self, case):
        seq, start, height, budget, s = case
        r = run_box(seq, start, height, budget, s)
        assert r.hits + r.faults == r.served
        assert r.time_used == r.hits + s * r.faults
        assert 0 <= r.time_used <= budget
        assert start <= r.end <= len(seq)

    @given(boxes_case())
    @settings(max_examples=100)
    def test_progress_monotone_in_budget(self, case):
        seq, start, height, budget, s = case
        r1 = run_box(seq, start, height, budget, s)
        r2 = run_box(seq, start, height, budget + s, s)
        assert r2.end >= r1.end

    @given(boxes_case())
    @settings(max_examples=100)
    def test_progress_monotone_in_height(self, case):
        """More cache never hurts LRU progress under a fixed budget.

        (LRU inclusion: contents at height h are a subset of contents at
        h+1, so every hit stays a hit and service time never increases.)
        """
        seq, start, height, budget, s = case
        r1 = run_box(seq, start, height, budget, s)
        r2 = run_box(seq, start, height + 1, budget, s)
        assert r2.end >= r1.end


class TestExecuteProfile:
    def test_completes_with_generous_boxes(self):
        seq = arr([0, 1, 2, 0, 1, 2])
        pr = execute_profile(seq, iter(lambda: 4, None), miss_cost=5)  # infinite 4s
        assert pr.completed
        assert pr.position == len(seq)
        assert pr.impact == sum(5 * r.height * r.height for r in pr.runs)
        assert pr.wall_time == sum(r.budget for r in pr.runs)

    def test_impact_counts_full_boxes(self):
        seq = arr([0])
        pr = execute_profile(seq, [8], miss_cost=5)
        assert pr.completed
        assert pr.impact == 5 * 64
        assert pr.wall_time == 40

    def test_max_boxes_guard(self):
        seq = arr(list(range(100)))
        pr = execute_profile(seq, iter(lambda: 1, None), miss_cost=5, max_boxes=3)
        assert not pr.completed
        assert len(pr.runs) == 3

    def test_finite_heights_exhausted(self):
        seq = arr(list(range(50)))
        pr = execute_profile(seq, [1, 1], miss_cost=5)
        assert not pr.completed
        assert pr.position == 2  # each height-1 box serves exactly 1 miss

    def test_start_offset(self):
        seq = arr([0, 1, 2, 3])
        pr = execute_profile(seq, iter(lambda: 4, None), miss_cost=5, start=2)
        assert pr.completed
        assert pr.runs[0].start == 2

    @given(
        st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=60),
        st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=75)
    def test_always_completes_with_infinite_min_boxes(self, seq, s):
        """Height-1 boxes forever always finish: each serves >= 1 request."""
        pr = execute_profile(arr(seq), iter(lambda: 1, None), miss_cost=s)
        assert pr.completed
        assert pr.position == len(seq)
