"""Unit and property tests for the O(1) LRU cache."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.paging import LRUCache


class TestBasics:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LRUCache(0)
        with pytest.raises(ValueError):
            LRUCache(-3)

    def test_single_page_hit_miss(self):
        c = LRUCache(1)
        assert not c.touch(7)
        assert c.touch(7)
        assert c.touch(7)
        assert c.hits == 2 and c.faults == 1

    def test_eviction_order_is_lru(self):
        c = LRUCache(2)
        c.touch(1)
        c.touch(2)
        c.touch(1)  # 1 is now MRU, 2 is LRU
        c.touch(3)  # evicts 2
        assert 1 in c and 3 in c and 2 not in c
        assert c.evictions == 1

    def test_peek_victim(self):
        c = LRUCache(3)
        assert c.peek_victim() is None
        for page in (4, 5, 6):
            c.touch(page)
        assert c.peek_victim() == 4
        c.touch(4)
        assert c.peek_victim() == 5

    def test_mru_order(self):
        c = LRUCache(3)
        for page in (1, 2, 3, 2):
            c.touch(page)
        assert c.pages_mru_order() == [2, 3, 1]
        assert list(c) == [2, 3, 1]

    def test_clear_keeps_counters(self):
        c = LRUCache(2)
        c.touch(1)
        c.touch(2)
        c.clear()
        assert len(c) == 0
        assert c.faults == 2
        assert not c.touch(1)  # cold again after clear

    def test_reset_counters_keeps_contents(self):
        c = LRUCache(2)
        c.touch(1)
        c.reset_counters()
        assert c.faults == 0
        assert 1 in c
        assert c.touch(1)

    def test_never_exceeds_capacity(self):
        c = LRUCache(4)
        for page in range(100):
            c.touch(page)
            assert len(c) <= 4

    def test_cycle_thrashing(self):
        """A cycle one page larger than capacity misses every time under LRU."""
        c = LRUCache(3)
        seq = [0, 1, 2, 3] * 10
        for page in seq:
            c.touch(page)
        assert c.hits == 0
        assert c.faults == len(seq)

    def test_cycle_fits(self):
        """A cycle that fits in capacity only misses on the first pass."""
        c = LRUCache(4)
        seq = [0, 1, 2, 3] * 10
        for page in seq:
            c.touch(page)
        assert c.faults == 4
        assert c.hits == len(seq) - 4


@st.composite
def request_sequences(draw):
    n_pages = draw(st.integers(min_value=1, max_value=12))
    length = draw(st.integers(min_value=0, max_value=200))
    return draw(st.lists(st.integers(min_value=0, max_value=n_pages - 1), min_size=length, max_size=length))


def _reference_lru(seq, capacity):
    """Oracle: LRU via an explicit recency list (O(n*k), obviously correct)."""
    recency: list[int] = []  # most recent first
    hits = 0
    for page in seq:
        if page in recency:
            hits += 1
            recency.remove(page)
        elif len(recency) >= capacity:
            recency.pop()
        recency.insert(0, page)
    return hits, recency


class TestProperties:
    @given(request_sequences(), st.integers(min_value=1, max_value=8))
    @settings(max_examples=200)
    def test_matches_reference_implementation(self, seq, capacity):
        c = LRUCache(capacity)
        for page in seq:
            c.touch(page)
        ref_hits, ref_recency = _reference_lru(seq, capacity)
        assert c.hits == ref_hits
        assert c.pages_mru_order() == ref_recency

    @given(request_sequences(), st.integers(min_value=1, max_value=8))
    @settings(max_examples=100)
    def test_inclusion_property(self, seq, capacity):
        """LRU(c) contents are a subset of LRU(c+1) contents at every step."""
        small = LRUCache(capacity)
        big = LRUCache(capacity + 1)
        for page in seq:
            small.touch(page)
            big.touch(page)
            assert set(small.pages_mru_order()) <= set(big.pages_mru_order())

    @given(request_sequences(), st.integers(min_value=1, max_value=8))
    @settings(max_examples=100)
    def test_hits_monotone_in_capacity(self, seq, capacity):
        small = LRUCache(capacity)
        big = LRUCache(capacity + 3)
        for page in seq:
            small.touch(page)
            big.touch(page)
        assert big.hits >= small.hits

    @given(request_sequences(), st.integers(min_value=1, max_value=8))
    @settings(max_examples=100)
    def test_counters_account_for_all_requests(self, seq, capacity):
        c = LRUCache(capacity)
        for page in seq:
            c.touch(page)
        assert c.hits + c.faults == len(seq)
        assert len(c) == min(capacity, len(set(seq)))
