"""Smoke + semantic tests for the E1–E9 experiment suite and the CLI.

Each experiment runs at a tiny custom scale here (the "quick" scale is
already CI-sized, but we further shrink where a knob exists) and we assert
the *semantic* content: the columns exist, the claim-relevant quantities
are in sane ranges, and reports render.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.experiments import EXPERIMENTS, run_named_experiment


class TestRegistry:
    def test_all_registered(self):
        assert sorted(EXPERIMENTS) == sorted(f"e{i}" for i in range(1, 12))

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="known"):
            run_named_experiment("e42")


class TestExperimentSemantics:
    def test_e1_ratios_positive_and_modest(self):
        rows, text = run_named_experiment("e1")
        assert "E1" in text
        for r in rows:
            assert r["ratio_mean"] >= 0.99  # can't beat OPT (up to rounding)
            assert r["ratio_mean"] <= 4 * np.log2(r["p"]) + 8

    def test_e2_analytic_ratio_near_one(self):
        rows, text = run_named_experiment("e2")
        for r in rows:
            assert 0.5 <= r["analytic_len_ratio"] <= 2.0
            assert r["chunks"] > 10

    def test_e4_well_rounded_everywhere(self):
        rows, text = run_named_experiment("e4")
        for r in rows:
            assert r["base_covered"] is True or r["base_covered"] == True  # noqa: E712
            assert r["max_gap_factor"] <= 8.0
            assert r["reserved_peak/k"] <= 2.0  # fits the xi=2 grant

    def test_e7_separation_grows(self):
        rows, text = run_named_experiment("e7")
        ratios = [r["blackbox_ratio"] for r in rows]
        assert ratios[-1] > ratios[0]
        assert all(r["detpar_ratio"] >= 0.95 for r in rows)

    def test_e8_inverse_square_wins_at_scale(self):
        rows, text = run_named_experiment("e8")
        last = rows[-1]
        assert last["inverse_square"] < last["inverse_linear"] < last["uniform"]

    def test_e9_det_matches_rand(self):
        rows, text = run_named_experiment("e9")
        for r in rows:
            assert r["det/rand"] <= 2.0  # derandomization costs at most ~constant


@pytest.mark.slow
class TestSweepExperiments:
    """The p-sweep experiments (heavier); still CI-runnable."""

    def test_e3_ratio_bounded(self):
        rows, text = run_named_experiment("e3")
        for r in rows:
            assert r["makespan_ratio"] <= 3 * np.log2(max(2, r["p"])) + 4

    def test_e5_all_algorithms_present(self):
        rows, text = run_named_experiment("e5")
        algs = {r["algorithm"] for r in rows}
        assert algs == {
            "det-par",
            "rand-par",
            "black-box-green",
            "equal-partition",
            "best-static-partition",
            "global-lru",
        }

    def test_e6_mean_ratio_columns(self):
        rows, text = run_named_experiment("e6")
        for r in rows:
            if r["algorithm"] in ("det-par", "rand-par"):
                assert r["mean_completion_ratio"] is not None
                assert r["mean_completion_ratio"] <= 3 * np.log2(max(2, r["p"])) + 4


class TestCli:
    def test_parser_choices(self):
        parser = build_parser()
        args = parser.parse_args(["e2", "--scale", "quick", "--seed", "5"])
        assert args.experiment == "e2" and args.seed == 5

    def test_main_runs_and_writes(self, tmp_path, capsys):
        out = tmp_path / "e2.md"
        csv_path = tmp_path / "e2.csv"
        rc = main(["e2", "--out", str(out), "--csv", str(csv_path)])
        assert rc == 0
        assert out.exists() and "E2" in out.read_text()
        assert csv_path.exists()
        assert "E2" in capsys.readouterr().out

    def test_main_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["e42"])


class TestCliViz:
    def test_viz_runs(self, capsys):
        rc = main(["viz", "--algorithm", "det-par", "--p", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "schedule" in out and "reserved cache" in out

    def test_list_runs(self, capsys):
        rc = main(["list"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "e1" in out and "e11" in out
