"""Tests for the ParallelWorkload container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads import PAGE_STRIDE, ParallelWorkload, disjointify


def arr(xs):
    return np.asarray(xs, dtype=np.int64)


class TestDisjointify:
    def test_relabels_by_stride(self):
        out = disjointify([arr([0, 1]), arr([0, 1])])
        assert out[0].tolist() == [0, 1]
        assert out[1].tolist() == [PAGE_STRIDE, PAGE_STRIDE + 1]

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            disjointify([arr([PAGE_STRIDE])])
        with pytest.raises(ValueError):
            disjointify([arr([-1])])


class TestParallelWorkload:
    def test_rejects_overlapping_sequences(self):
        with pytest.raises(ValueError):
            ParallelWorkload([arr([1, 2]), arr([2, 3])])

    def test_from_local_makes_disjoint(self):
        wl = ParallelWorkload.from_local([arr([0, 1]), arr([0, 1])], name="t")
        assert wl.p == 2
        assert wl.name == "t"

    def test_shape_properties(self):
        wl = ParallelWorkload.from_local([arr([0, 1, 0]), arr([5])])
        assert wl.lengths == (3, 1)
        assert wl.total_requests == 4
        assert wl.distinct_pages(0) == 2
        assert wl.distinct_pages(1) == 1

    def test_indexing_and_iteration(self):
        wl = ParallelWorkload.from_local([arr([0]), arr([1])])
        assert len(list(wl)) == 2
        assert wl[0].tolist() == [0]

    def test_describe_mentions_name_and_p(self):
        wl = ParallelWorkload.from_local([arr([0, 1])], name="demo")
        text = wl.describe()
        assert "demo" in text and "p=1" in text

    def test_save_load_roundtrip(self, tmp_path):
        wl = ParallelWorkload.from_local(
            [arr([0, 1, 2]), arr([0, 0])], name="rt", meta={"alpha": 1.5, "kind": "x"}
        )
        path = tmp_path / "wl.npz"
        wl.save(path)
        loaded = ParallelWorkload.load(path)
        assert loaded.name == "rt"
        assert loaded.meta == {"alpha": 1.5, "kind": "x"}
        assert loaded.p == 2
        for a, b in zip(wl.sequences, loaded.sequences):
            assert (a == b).all()

    def test_empty_sequences_allowed(self):
        wl = ParallelWorkload.from_local([arr([]), arr([0])])
        assert wl.lengths == (0, 1)
