"""Tests for the synthetic workload generators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    WORKLOAD_KINDS,
    cyclic,
    make_parallel_workload,
    mixed_locality,
    phased_working_sets,
    polluted_cycle,
    sawtooth,
    scan,
    uniform,
    zipf,
)


def rng(seed=0):
    return np.random.default_rng(seed)


class TestCyclic:
    def test_basic(self):
        assert cyclic(7, 3).tolist() == [0, 1, 2, 0, 1, 2, 0]

    def test_validation(self):
        with pytest.raises(ValueError):
            cyclic(5, 0)

    def test_exact_multiple(self):
        assert cyclic(6, 3).tolist() == [0, 1, 2] * 2

    @given(st.integers(0, 500), st.integers(1, 50))
    @settings(max_examples=60)
    def test_length_and_range(self, n, c):
        seq = cyclic(n, c)
        assert len(seq) == n
        if n:
            assert seq.min() >= 0 and seq.max() < c


class TestScan:
    def test_all_distinct(self):
        seq = scan(100)
        assert len(np.unique(seq)) == 100

    def test_start_page(self):
        assert scan(3, start_page=10).tolist() == [10, 11, 12]


class TestPollutedCycle:
    def test_validation(self):
        with pytest.raises(ValueError):
            polluted_cycle(10, 0, 2)
        with pytest.raises(ValueError):
            polluted_cycle(10, 3, 0)

    def test_pollution_positions(self):
        seq = polluted_cycle(12, 4, 3)
        # every 3rd request (positions 2,5,8,11) is a fresh polluter >= 4
        for i, page in enumerate(seq):
            if (i + 1) % 3 == 0:
                assert page >= 4
            else:
                assert page < 4

    def test_polluters_are_distinct(self):
        seq = polluted_cycle(60, 5, 4)
        polluters = seq[seq >= 5]
        assert len(np.unique(polluters)) == len(polluters)

    def test_pollution_level(self):
        n = 1000
        seq = polluted_cycle(n, 9, 10)
        assert int((seq >= 9).sum()) == n // 10

    def test_period_one_is_all_polluters(self):
        seq = polluted_cycle(20, 5, 1)
        assert (seq >= 5).all()

    def test_custom_polluter_start(self):
        seq = polluted_cycle(6, 2, 2, polluter_start=100)
        assert seq[1] == 100 and seq[3] == 101 and seq[5] == 102


class TestStochasticGenerators:
    def test_zipf_skew(self):
        seq = zipf(20_000, 100, 1.2, rng(0))
        counts = np.bincount(seq, minlength=100)
        assert counts[0] > counts[50] > 0 or counts[50] == 0
        assert counts[0] > 3 * max(1, counts[10])

    def test_zipf_validation(self):
        with pytest.raises(ValueError):
            zipf(10, 0, 1.0, rng())

    def test_uniform_range(self):
        seq = uniform(5000, 37, rng(1))
        assert seq.min() >= 0 and seq.max() < 37

    def test_uniform_validation(self):
        with pytest.raises(ValueError):
            uniform(10, 0, rng())

    def test_reproducible(self):
        a = zipf(100, 50, 1.0, rng(5))
        b = zipf(100, 50, 1.0, rng(5))
        assert (a == b).all()

    def test_mixed_locality_hot_fraction(self):
        seq = mixed_locality(20_000, rng(2), hot_pages=8, cold_pages=1000, hot_fraction=0.75)
        hot = (seq < 8).mean()
        assert 0.7 < hot < 0.8


class TestSawtooth:
    def test_shape(self):
        assert sawtooth(8, 4).tolist() == [0, 1, 2, 3, 2, 1, 0, 1]

    def test_validation(self):
        with pytest.raises(ValueError):
            sawtooth(5, 1)


class TestPhasedWorkingSets:
    def test_phases_use_disjoint_fresh_pages(self):
        seq = phased_working_sets(3, 20, 5, rng(0), overlap=0.0)
        first = set(seq[:20].tolist())
        second = set(seq[20:40].tolist())
        assert first.isdisjoint(second)

    def test_overlap_carries_pages(self):
        seq = phased_working_sets(2, 30, 10, rng(1), overlap=0.5)
        first = set(seq[:30].tolist())
        second = set(seq[30:].tolist())
        assert len(first & second) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            phased_working_sets(2, 10, 5, rng(), overlap=1.0)
        with pytest.raises(ValueError):
            phased_working_sets(2, 10, 0, rng())

    def test_empty(self):
        assert len(phased_working_sets(0, 10, 5, rng())) == 0


class TestMakeParallelWorkload:
    def test_disjoint_and_sized(self):
        wl = make_parallel_workload(p=8, n_requests=200, k=32, rng=rng(0))
        assert wl.p == 8
        assert all(len(s) == 200 for s in wl.sequences)
        all_pages = [set(np.unique(s).tolist()) for s in wl.sequences]
        for i in range(8):
            for j in range(i + 1, 8):
                assert all_pages[i].isdisjoint(all_pages[j])

    def test_single_kind(self):
        for kind in WORKLOAD_KINDS:
            wl = make_parallel_workload(p=3, n_requests=64, k=16, rng=rng(1), kind=kind)
            assert wl.p == 3

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_parallel_workload(p=2, n_requests=10, k=8, rng=rng(), kind="nope")

    def test_validation(self):
        with pytest.raises(ValueError):
            make_parallel_workload(p=0, n_requests=10, k=8, rng=rng())

    def test_reproducible(self):
        a = make_parallel_workload(p=4, n_requests=100, k=16, rng=rng(9))
        b = make_parallel_workload(p=4, n_requests=100, k=16, rng=rng(9))
        for x, y in zip(a.sequences, b.sequences):
            assert (x == y).all()
