"""Tests for the Theorem 4 adversarial construction and Lemma 8's OPT."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BlackBoxPar
from repro.workloads import build_adversarial_instance, lemma8_opt_makespan


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            build_adversarial_instance(1)
        with pytest.raises(ValueError):
            build_adversarial_instance(3, alpha=0)
        with pytest.raises(ValueError):
            build_adversarial_instance(3, suffix_phase_multiplier=0)

    def test_shape_ell2(self):
        inst = build_adversarial_instance(2, alpha=0.25)
        assert inst.p == 7
        assert inst.k >= inst.p  # k >= p so suffixes can run in parallel
        assert inst.workload.p == 7
        assert len(inst.prefix_lengths) == 7
        assert len(inst.family_of) == 7

    def test_family_sizes_and_phase_counts(self):
        """Family F_i has 2^i sequences with ℓ - logℓ - i + 1 prefix phases."""
        inst = build_adversarial_instance(4, alpha=0.1)
        ell, log_ell = 4, 2
        phase_len = inst.gamma * (inst.k - 1)
        from collections import Counter

        fam_sizes = Counter(f for f in inst.family_of if f >= 0)
        for i, size in fam_sizes.items():
            assert size == 1 << i, (i, size)
        for fam, plen in zip(inst.family_of, inst.prefix_lengths):
            if fam >= 0:
                expected_phases = ell - log_ell - fam + 1
                assert plen == expected_phases * phase_len
            else:
                assert plen == 0

    def test_prefixed_fraction_is_small(self):
        inst = build_adversarial_instance(4, alpha=0.1)
        prefixed = sum(1 for f in inst.family_of if f >= 0)
        assert prefixed < inst.p // 2  # most sequences are suffix-only

    def test_pollution_doubles_per_phase(self):
        """Period n_j = p/2^j (floored, clamped at 2): pollution doubles."""
        inst = build_adversarial_instance(3, alpha=0.25)
        for j, period in enumerate(inst.phase_pollution_periods):
            assert period == max(2, inst.p >> j)

    def test_suffix_is_all_fresh_pages(self):
        inst = build_adversarial_instance(2, alpha=0.25)
        for seq, plen in zip(inst.workload.sequences, inst.prefix_lengths):
            suffix = seq[plen:]
            assert len(np.unique(suffix)) == len(suffix)

    def test_prefix_reuses_repeaters(self):
        inst = build_adversarial_instance(3, alpha=0.5)
        i = inst.family_of.index(0)  # longest prefix
        seq = inst.workload.sequences[i]
        prefix = seq[: inst.prefix_lengths[i]]
        # most prefix requests are to the k-1 repeaters (reused heavily)
        counts = np.unique(prefix, return_counts=True)[1]
        assert counts.max() >= inst.gamma  # repeaters appear ~γ times per phase

    def test_sequences_are_disjoint(self):
        inst = build_adversarial_instance(2, alpha=0.25)
        pages = [set(np.unique(s).tolist()) for s in inst.workload.sequences]
        for i in range(len(pages)):
            for j in range(i + 1, len(pages)):
                assert pages[i].isdisjoint(pages[j])

    def test_recommended_miss_cost(self):
        inst = build_adversarial_instance(2)
        assert inst.recommended_miss_cost() == inst.k + 1
        assert inst.recommended_miss_cost(c=3) == 3 * inst.k + 1

    def test_suffix_multiplier_scales_length(self):
        a = build_adversarial_instance(2, alpha=0.25, suffix_phase_multiplier=1)
        b = build_adversarial_instance(2, alpha=0.25, suffix_phase_multiplier=4)
        assert b.suffix_phases == 4 * a.suffix_phases
        assert b.workload.total_requests > a.workload.total_requests


class TestLemma8Opt:
    def test_opt_formula_structure(self):
        """Stage 2 alone lower-bounds the schedule; both stages contribute."""
        inst = build_adversarial_instance(2, alpha=0.25)
        s = inst.recommended_miss_cost()
        opt = lemma8_opt_makespan(inst, s)
        longest_suffix = max(
            len(seq) - pl for seq, pl in zip(inst.workload.sequences, inst.prefix_lengths)
        )
        assert opt >= s * longest_suffix
        assert opt < 10 * s * longest_suffix  # prefixes are not the dominant cost

    def test_opt_beats_greedily_green_algorithms(self):
        """The separation: the Lemma-8 schedule (willing to waste impact)
        beats the impact-constrained black-box construction."""
        inst = build_adversarial_instance(3, alpha=0.25, suffix_phase_multiplier=1)
        s = inst.recommended_miss_cost()
        opt = lemma8_opt_makespan(inst, s)
        bb = BlackBoxPar(2 * inst.k, s).run(inst.workload)
        assert bb.makespan > 1.2 * opt

    def test_separation_grows_with_p(self):
        ratios = []
        for ell in (2, 3):
            inst = build_adversarial_instance(ell, alpha=0.25, suffix_phase_multiplier=1)
            s = inst.recommended_miss_cost()
            opt = lemma8_opt_makespan(inst, s)
            bb = BlackBoxPar(2 * inst.k, s).run(inst.workload)
            ratios.append(bb.makespan / opt)
        assert ratios[1] > ratios[0]
