"""Tests for the plain-text trace format."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads import (
    ParallelWorkload,
    cyclic,
    read_sequence_text,
    read_trace_text,
    write_sequence_text,
    write_trace_text,
)


def arr(xs):
    return np.asarray(xs, dtype=np.int64)


class TestSequenceText:
    def test_roundtrip(self, tmp_path):
        seq = cyclic(50, 7)
        path = tmp_path / "seq.txt"
        write_sequence_text(seq, path, comment="a cycle\nof seven")
        loaded = read_sequence_text(path)
        assert (loaded == seq).all()
        assert path.read_text().startswith("# a cycle\n# of seven\n")

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "s.txt"
        path.write_text("# header\n\n1\n2  # trailing comment\n\n3\n")
        assert read_sequence_text(path).tolist() == [1, 2, 3]

    def test_rejects_malformed(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1 2 3\n")
        with pytest.raises(ValueError):
            read_sequence_text(path)

    def test_empty(self, tmp_path):
        path = tmp_path / "e.txt"
        write_sequence_text(arr([]), path)
        assert len(read_sequence_text(path)) == 0


class TestTraceText:
    def test_roundtrip(self, tmp_path):
        wl = ParallelWorkload.from_local([cyclic(20, 3), cyclic(10, 2)], name="rt")
        path = tmp_path / "trace.txt"
        write_trace_text(wl, path)
        loaded = read_trace_text(path)
        assert loaded.p == 2
        for a, b in zip(wl.sequences, loaded.sequences):
            assert (a == b).all()

    def test_interleaved_lines_grouped_by_processor(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("0 10\n1 20\n0 11\n1 21\n")
        wl = read_trace_text(path)
        assert wl.sequences[0].tolist() == [10, 11]
        assert wl.sequences[1].tolist() == [20, 21]

    def test_missing_processor_ids_give_empty_sequences(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("2 5\n")
        wl = read_trace_text(path)
        assert wl.p == 3
        assert wl.lengths == (0, 0, 1)

    def test_shared_pages_need_opt_in(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("0 5\n1 5\n")
        with pytest.raises(ValueError):
            read_trace_text(path)
        wl = read_trace_text(path, allow_shared=True)
        assert wl.is_shared

    def test_rejects_malformed(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\n")
        with pytest.raises(ValueError):
            read_trace_text(path)
        path.write_text("-1 5\n")
        with pytest.raises(ValueError):
            read_trace_text(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing\n")
        wl = read_trace_text(path)
        assert wl.p == 0


class TestAddressTrace:
    def test_decimal_and_hex(self, tmp_path):
        from repro.workloads import read_address_trace

        path = tmp_path / "addr.txt"
        path.write_text("# trace\n4096\n0x2000\n8191\n\n0x0\n")
        pages = read_address_trace(path, page_size=4096)
        assert pages.tolist() == [1, 2, 1, 0]

    def test_page_size_validation(self, tmp_path):
        from repro.workloads import read_address_trace

        path = tmp_path / "a.txt"
        path.write_text("1\n")
        with pytest.raises(ValueError):
            read_address_trace(path, page_size=0)

    def test_negative_address(self, tmp_path):
        from repro.workloads import read_address_trace

        path = tmp_path / "a.txt"
        path.write_text("-5\n")
        with pytest.raises(ValueError):
            read_address_trace(path)

    def test_feeds_simulator(self, tmp_path):
        from repro.paging import LRUCache
        from repro.workloads import read_address_trace

        path = tmp_path / "a.txt"
        path.write_text("\n".join(str(4096 * (i % 5)) for i in range(100)))
        pages = read_address_trace(path)
        cache = LRUCache(5)
        for page in pages:
            cache.touch(int(page))
        assert cache.faults == 5
