"""Tests for the shared-pages extension (the paper's open problem, E10)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel import EqualPartition, GlobalLRU
from repro.workloads import ParallelWorkload, make_shared_workload


def rng(seed=0):
    return np.random.default_rng(seed)


def arr(xs):
    return np.asarray(xs, dtype=np.int64)


class TestAllowShared:
    def test_default_rejects_overlap(self):
        with pytest.raises(ValueError):
            ParallelWorkload([arr([1]), arr([1])])

    def test_opt_in_allows_overlap(self):
        wl = ParallelWorkload([arr([1]), arr([1])], allow_shared=True)
        assert wl.is_shared

    def test_is_shared_false_for_disjoint(self):
        wl = ParallelWorkload([arr([1]), arr([2])])
        assert not wl.is_shared


class TestMakeSharedWorkload:
    def test_validation(self):
        with pytest.raises(ValueError):
            make_shared_workload(2, 10, 4, 4, 1.5, rng())
        with pytest.raises(ValueError):
            make_shared_workload(2, 10, 0, 4, 0.5, rng())

    def test_fraction_zero_is_disjoint(self):
        wl = make_shared_workload(4, 200, 16, 8, 0.0, rng(1))
        assert not wl.is_shared

    def test_fraction_one_fully_shared(self):
        wl = make_shared_workload(4, 200, 16, 8, 1.0, rng(2))
        pages = set(np.unique(np.concatenate(wl.sequences)).tolist())
        assert pages <= set(range(16))

    def test_shared_fraction_approximate(self):
        wl = make_shared_workload(4, 5000, 16, 64, 0.7, rng(3))
        for seq in wl.sequences:
            frac = float((seq < 16).mean())
            assert 0.65 < frac < 0.75

    def test_private_pools_disjoint_across_procs(self):
        wl = make_shared_workload(3, 500, 8, 8, 0.5, rng(4))
        privates = [set(np.unique(s[s >= 8]).tolist()) for s in wl.sequences]
        for i in range(3):
            for j in range(i + 1, 3):
                assert privates[i].isdisjoint(privates[j])

    def test_reproducible(self):
        a = make_shared_workload(3, 100, 8, 8, 0.5, rng(5))
        b = make_shared_workload(3, 100, 8, 8, 0.5, rng(5))
        for x, y in zip(a.sequences, b.sequences):
            assert (x == y).all()


class TestSharingAdvantage:
    def test_global_lru_wins_under_heavy_sharing(self):
        """The dedup advantage: one copy of the hot set vs p copies."""
        wl = make_shared_workload(8, 500, shared_pages=48, private_pages=8, shared_fraction=0.9, rng=rng(6))
        s = 16
        shared_cache = GlobalLRU(64, s).run(wl)
        partitioned = EqualPartition(64, s).run(wl)
        assert shared_cache.makespan < 0.8 * partitioned.makespan

    def test_no_advantage_without_sharing(self):
        wl = make_shared_workload(8, 500, shared_pages=48, private_pages=8, shared_fraction=0.0, rng=rng(7))
        s = 16
        shared_cache = GlobalLRU(64, s).run(wl)
        partitioned = EqualPartition(64, s).run(wl)
        # private pools have 8 pages each = exactly the k/p share: equal
        # partition is optimal here and global LRU at best matches it
        assert shared_cache.makespan >= 0.9 * partitioned.makespan


class TestE10:
    def test_rows_and_monotone_advantage(self):
        from repro.experiments import run_named_experiment

        rows, text = run_named_experiment("e10")
        assert "E10" in text
        assert rows[0]["shared_fraction"] == 0.0
        # heavy sharing: global LRU beats the disjointness-built algorithms
        assert rows[-1]["global-lru"] < rows[-1]["det-par"]
        assert rows[-1]["global-lru"] < rows[-1]["equal-partition"]
