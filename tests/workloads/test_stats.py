"""Tests for workload characterization diagnostics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    characterize,
    cyclic,
    marginal_benefit,
    pollution_level,
    polluted_cycle,
    scan,
    working_set_sizes,
)


class TestWorkingSet:
    def test_validation(self):
        with pytest.raises(ValueError):
            working_set_sizes([1, 2], 0)

    def test_tumbling_windows(self):
        ws = working_set_sizes([1, 1, 2, 2, 3, 3], 2)
        assert ws.tolist() == [1, 1, 1]

    def test_cycle_working_set_is_cycle_length(self):
        ws = working_set_sizes(cyclic(100, 7), 14)
        assert all(w == 7 for w in ws[:-1])

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=200), st.integers(1, 50))
    @settings(max_examples=75)
    def test_bounded_by_window_and_total(self, seq, window):
        ws = working_set_sizes(seq, window)
        assert all(1 <= w <= min(window, len(set(seq))) for w in ws)


class TestPollution:
    def test_scan_is_pure_pollution(self):
        assert pollution_level(scan(50)) == 1.0

    def test_cycle_is_clean(self):
        assert pollution_level(cyclic(60, 5)) == 0.0

    def test_empty(self):
        assert pollution_level([]) == 0.0

    def test_polluted_cycle_matches_period(self):
        n, period = 1000, 10
        seq = polluted_cycle(n, 9, period)
        assert pollution_level(seq) == pytest.approx(1 / period, abs=0.01)


class TestMarginalBenefit:
    def test_cycle_cliff(self):
        """All marginal benefit of a cycle sits at capacity == cycle size."""
        seq = cyclic(400, 6)
        mb = marginal_benefit(seq, 10)
        # Δfaults going from 5 to 6 pages is the big one
        assert mb[4] == mb.max()
        assert mb[4] > 100

    def test_scan_no_benefit(self):
        mb = marginal_benefit(scan(100), 8)
        assert (mb == 0).all()

    def test_nonnegative(self):
        rng = np.random.default_rng(0)
        seq = rng.integers(0, 30, size=500)
        mb = marginal_benefit(seq, 16)
        assert (mb >= 0).all()  # LRU inclusion: more cache never hurts


class TestCharacterize:
    def test_empty(self):
        stats = characterize([])
        assert stats.n_requests == 0
        assert stats.as_dict()["pollution"] == 0.0

    def test_cycle(self):
        stats = characterize(cyclic(1000, 8), window=64)
        assert stats.distinct_pages == 8
        assert stats.pollution == 0.0
        assert stats.reuse_median == 8.0  # every warm access has distance 8
        assert stats.max_working_set == 8

    def test_scan(self):
        stats = characterize(scan(300), window=50)
        assert stats.pollution == 1.0
        assert stats.reuse_median == 0.0
        assert stats.max_working_set == 50

    def test_as_dict_keys(self):
        d = characterize(cyclic(100, 4)).as_dict()
        assert {"n_requests", "distinct_pages", "pollution", "reuse_median"} <= set(d)
