"""Trace registry: content addressing, dedup, naming, lifecycle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.traces import TraceNotFoundError, TraceRegistry, TraceStore
from repro.workloads import ParallelWorkload
from repro.workloads.formats import write_trace_text

RNG = np.random.default_rng(23)


def workload(shift=0, name="reg-wl"):
    seqs = [RNG.integers(0, 40, size=500) + 300 * i + shift for i in range(2)]
    return ParallelWorkload(sequences=seqs, name=name)


@pytest.fixture
def registry(tmp_path):
    return TraceRegistry(tmp_path / "registry")


class TestImportAndDedup:
    def test_import_file_registers_by_digest(self, registry, tmp_path):
        wl = workload()
        write_trace_text(wl, tmp_path / "t.txt")
        store = registry.import_file(tmp_path / "t.txt", name="first")
        assert store.path == registry.object_path(store.content_digest)
        assert "first" in registry

    def test_identical_content_stored_once(self, registry, tmp_path):
        wl = workload()
        write_trace_text(wl, tmp_path / "t.txt")
        a = registry.import_file(tmp_path / "t.txt", name="via-file")
        b = registry.add_workload(wl, name="via-memory")
        assert a.path == b.path
        assert a.content_digest == b.content_digest
        objects = list(registry.objects_dir.rglob("*.trc"))
        assert len(objects) == 1

    def test_different_content_different_objects(self, registry):
        registry.add_workload(workload(shift=0), name="a")
        registry.add_workload(workload(shift=7), name="b")
        assert len(list(registry.objects_dir.rglob("*.trc"))) == 2
        assert registry.resolve("a") != registry.resolve("b")

    def test_no_import_residue(self, registry, tmp_path):
        registry.add_workload(workload(), name="x")
        residue = [p for p in registry.objects_dir.rglob("*") if p.suffix == ".import"]
        assert residue == []

    def test_failed_import_leaves_registry_clean(self, registry, tmp_path):
        (tmp_path / "clash.txt").write_text("0 5\n1 5\n")
        with pytest.raises(ValueError, match="allow_shared"):
            registry.import_file(tmp_path / "clash.txt", name="bad")
        assert "bad" not in registry
        assert list(registry.objects_dir.rglob("*.trc")) == []


class TestResolution:
    def test_resolve_by_name_digest_and_prefix(self, registry):
        store = registry.add_workload(workload(), name="findme")
        digest = store.content_digest
        assert registry.resolve("findme") == digest
        assert registry.resolve(digest) == digest
        assert registry.resolve(digest[:12]) == digest

    def test_unknown_ref_raises_with_names(self, registry):
        registry.add_workload(workload(), name="only-one")
        with pytest.raises(TraceNotFoundError, match="only-one"):
            registry.get("nope")

    def test_get_returns_working_store(self, registry):
        wl = workload()
        registry.add_workload(wl, name="w")
        store = registry.get("w")
        assert isinstance(store, TraceStore)
        assert np.array_equal(store.column(1), wl.sequences[1])
        assert store.verify()

    def test_workload_is_store_backed(self, registry):
        from repro.traces import StoredWorkload

        registry.add_workload(workload(), name="w")
        swl = registry.workload("w")
        assert isinstance(swl, StoredWorkload)
        assert swl.content_digest == registry.resolve("w")


class TestLifecycle:
    def test_ls_and_info(self, registry):
        registry.add_workload(workload(shift=0), name="one")
        registry.add_workload(workload(shift=9), name="two")
        rows = registry.ls()
        assert [r["name"] for r in rows] == ["one", "two"]
        assert all(r["requests"] == 1000 for r in rows)
        info = registry.info("one")
        assert info["p"] == 2
        assert info["lengths"] == [500, 500]

    def test_export_copies_store(self, registry, tmp_path):
        registry.add_workload(workload(), name="w")
        out = registry.export("w", tmp_path / "out" / "exported.trc")
        assert TraceStore(out).content_digest == registry.resolve("w")

    def test_remove_drops_object_when_last_name_goes(self, registry):
        wl = workload()
        registry.add_workload(wl, name="a")
        registry.add_workload(wl, name="b")  # same digest, second name
        registry.remove("a")
        assert "b" in registry  # object still referenced
        assert len(list(registry.objects_dir.rglob("*.trc"))) == 1
        registry.remove("b")
        assert list(registry.objects_dir.rglob("*.trc")) == []
        with pytest.raises(TraceNotFoundError):
            registry.get("b")

    def test_rename_moves_pointer_not_data(self, registry):
        wl = workload()
        registry.add_workload(wl, name="old")
        registry.add_workload(wl, name="new")
        assert registry.resolve("old") == registry.resolve("new")

    def test_env_var_default_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACES_DIR", str(tmp_path / "env-root"))
        reg = TraceRegistry()
        assert reg.root == tmp_path / "env-root"


class TestSharedDigestRemoval:
    """Refcounted rm on a digest shared by several names (ISSUE 8)."""

    def test_removing_one_name_keeps_shared_blob_readable(self, registry):
        wl = workload()
        registry.add_workload(wl, name="corpus/a")
        registry.add_workload(wl, name="corpus/b")
        registry.add_workload(wl, name="corpus/c")
        registry.remove("corpus/b")
        # both survivors still resolve AND their object still opens
        for name in ("corpus/a", "corpus/c"):
            store = registry.get(name)
            assert store.total_requests == wl.total_requests
        assert len(list(registry.objects_dir.rglob("*.trc"))) == 1
        with pytest.raises(TraceNotFoundError):
            registry.resolve("corpus/b")

    def test_surviving_display_name_stays_live(self, registry):
        wl = workload()
        registry.add_workload(wl, name="n1")
        registry.add_workload(wl, name="n2")  # catalog display name now n2
        registry.remove("n2")
        rows = registry.ls()
        assert [r["name"] for r in rows] == ["n1"]
        # the per-digest info must not keep pointing at the removed label
        digest = registry.resolve("n1")
        assert registry.ls()[0]["digest"] == digest
        catalog_info = registry.get("n1")
        assert catalog_info.content_digest == digest

    def test_remove_by_digest_picks_first_name_deterministically(self, registry):
        wl = workload()
        registry.add_workload(wl, name="zz")
        registry.add_workload(wl, name="aa")
        digest = registry.resolve("aa")
        registry.remove(digest)  # must drop 'aa' (sort order), keep 'zz'
        assert "zz" in registry
        assert "aa" not in registry
        registry.remove(digest)
        assert list(registry.objects_dir.rglob("*.trc")) == []

    def test_last_removal_drops_object_and_fanout_dir(self, registry):
        wl = workload()
        registry.add_workload(wl, name="only")
        digest = registry.resolve("only")
        registry.remove("only")
        assert not registry.object_path(digest).exists()


class TestListingOrder:
    """`ls` must be byte-stable across platforms and insertion orders."""

    def test_ls_sorted_by_name_regardless_of_insertion_order(self, registry):
        names = ["m/2", "a/9", "z/1", "a/1", "m/1"]
        for i, name in enumerate(names):
            registry.add_workload(workload(shift=i, name=name), name=name)
        assert [r["name"] for r in registry.ls()] == sorted(names)

    def test_ls_prefix_filters_namespace(self, registry):
        registry.add_workload(workload(shift=0), name="hard/det-par/abc")
        registry.add_workload(workload(shift=1), name="hard/rand-par/def")
        registry.add_workload(workload(shift=2), name="plain")
        rows = registry.ls(prefix="hard/")
        assert [r["name"] for r in rows] == ["hard/det-par/abc", "hard/rand-par/def"]
        assert [r["name"] for r in registry.ls(prefix="nope/")] == []

    def test_ls_rows_carry_digest_and_shape(self, registry):
        registry.add_workload(workload(), name="w")
        (row,) = registry.ls()
        assert row["digest"] == registry.resolve("w")
        assert row["p"] == 2 and row["requests"] == 1000
