"""The ``repro trace`` command family and ``repro run --trace``."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.traces import TraceStore
from repro.workloads import ParallelWorkload
from repro.workloads.formats import write_trace_text

RNG = np.random.default_rng(59)


@pytest.fixture
def trace_file(tmp_path):
    wl = ParallelWorkload(
        sequences=[RNG.integers(0, 30, size=400) + 100 * i for i in range(2)], name="cli-wl"
    )
    path = tmp_path / "t.txt"
    write_trace_text(wl, path)
    return path, wl


@pytest.fixture
def registry_args(tmp_path):
    return ["--registry", str(tmp_path / "reg")]


class TestTraceCommands:
    def test_import_ls_info_sample_rm(self, trace_file, registry_args, tmp_path, capsys):
        path, wl = trace_file
        assert main(["trace"] + registry_args + ["import", str(path), "--name", "demo"]) == 0
        out = capsys.readouterr().out
        assert "imported demo" in out and "requests=800" in out

        assert main(["trace"] + registry_args + ["ls"]) == 0
        assert "demo" in capsys.readouterr().out

        assert main(["trace"] + registry_args + ["info", "demo", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "digest:" in out and "verified" in out

        assert main(["trace"] + registry_args + ["sample", "demo", "--proc", "1", "--rows", "3"]) == 0
        sample = [int(line) for line in capsys.readouterr().out.split()]
        assert sample == wl.sequences[1][:3].tolist()

        assert main(["trace"] + registry_args + ["rm", "demo"]) == 0
        assert main(["trace"] + registry_args + ["info", "demo"]) == 2

    def test_export_round_trips(self, trace_file, registry_args, tmp_path, capsys):
        path, wl = trace_file
        main(["trace"] + registry_args + ["import", str(path), "--name", "demo"])
        dest = tmp_path / "out" / "demo.trc"
        assert main(["trace"] + registry_args + ["export", "demo", str(dest)]) == 0
        store = TraceStore(dest)
        assert np.array_equal(store.column(0), wl.sequences[0])
        assert store.verify()

    def test_unknown_ref_fails_cleanly(self, registry_args, capsys):
        assert main(["trace"] + registry_args + ["info", "ghost"]) == 2
        assert "ghost" in capsys.readouterr().err

    def test_import_bad_file_fails_cleanly(self, registry_args, tmp_path, capsys):
        bad = tmp_path / "clash.txt"
        bad.write_text("0 1\n1 1\n")
        assert main(["trace"] + registry_args + ["import", str(bad)]) == 2
        assert "allow_shared" in capsys.readouterr().err

    def test_ls_empty_registry(self, registry_args, capsys):
        assert main(["trace"] + registry_args + ["ls"]) == 0
        assert "no traces registered" in capsys.readouterr().out


class TestRunCommand:
    def test_run_on_registered_trace(self, trace_file, registry_args, tmp_path, capsys):
        path, _ = trace_file
        main(["trace"] + registry_args + ["import", str(path), "--name", "demo"])
        csv_path = tmp_path / "rows.csv"
        code = main(
            ["run", "--trace", "demo", "--registry", str(tmp_path / "reg"),
             "--algorithms", "det-par", "--cache-size", "16", "--miss-cost", "4",
             "--seeds", "2", "--no-cache", "--csv", str(csv_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "det-par" in out
        digest = TraceStore(next((tmp_path / "reg" / "objects").rglob("*.trc"))).content_digest
        assert digest[:12] in out  # row carries the trace digest
        assert digest in csv_path.read_text()

    def test_run_stream_matches_in_memory_rows(self, trace_file, registry_args, tmp_path, capsys):
        # regression: --stream hands run_experiment a StreamingWorkload
        # view, which resolve_workload must pass through untouched (it
        # once round-tripped everything non-ParallelWorkload back
        # through the registry by name and crashed)
        path, _ = trace_file
        main(["trace"] + registry_args + ["import", str(path), "--name", "demo"])
        common = [
            "run", "--trace", "demo", "--registry", str(tmp_path / "reg"),
            "--algorithms", "det-par,global-lru", "--cache-size", "16",
            "--miss-cost", "4", "--seeds", "2", "--no-lb", "--no-cache",
        ]
        memory_csv = tmp_path / "memory.csv"
        streamed_csv = tmp_path / "streamed.csv"
        assert main(common + ["--csv", str(memory_csv)]) == 0
        assert main(common + ["--stream", "--csv", str(streamed_csv)]) == 0
        capsys.readouterr()
        assert streamed_csv.read_text() == memory_csv.read_text()

    def test_run_unknown_trace_fails_cleanly(self, registry_args, tmp_path, capsys):
        code = main(
            ["run", "--trace", "ghost", "--registry", str(tmp_path / "reg"),
             "--cache-size", "16", "--miss-cost", "4"]
        )
        assert code == 2
        assert "ghost" in capsys.readouterr().err

    def test_run_rejects_empty_algorithms(self, trace_file, registry_args, tmp_path, capsys):
        path, _ = trace_file
        main(["trace"] + registry_args + ["import", str(path), "--name", "demo"])
        code = main(
            ["run", "--trace", "demo", "--registry", str(tmp_path / "reg"),
             "--algorithms", " , ", "--cache-size", "16", "--miss-cost", "4"]
        )
        assert code == 2
