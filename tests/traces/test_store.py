"""Binary trace store: round-trips, digests, mmap, corruption, atomicity."""

from __future__ import annotations

import json
import pickle
import struct

import numpy as np
import pytest

from repro.exec import workload_fingerprint
from repro.traces import (
    MAGIC,
    StoredWorkload,
    StoreWriter,
    TraceCorruptError,
    TraceFormatError,
    TraceStore,
    TraceVersionError,
    content_digest_of,
    open_workload,
    write_store,
)
from repro.workloads import ParallelWorkload

RNG = np.random.default_rng(7)


def workload(p=3, n=2000, name="store-test"):
    seqs = [RNG.integers(0, 60, size=n) + 1000 * i for i in range(p)]
    return ParallelWorkload(sequences=seqs, name=name, meta={"kind": "synthetic"})


class TestRoundTrip:
    def test_columns_survive_byte_exact(self, tmp_path):
        wl = workload()
        store = write_store(tmp_path / "a.trc", wl, chunk_rows=333)
        assert store.p == wl.p
        assert store.lengths == tuple(len(s) for s in wl.sequences)
        for i, seq in enumerate(wl.sequences):
            assert np.array_equal(store.column(i), seq)

    def test_chunks_concatenate_to_column(self, tmp_path):
        wl = workload()
        store = write_store(tmp_path / "a.trc", wl, chunk_rows=171)
        for i, seq in enumerate(wl.sequences):
            chunks = list(store.iter_chunks(i, verify=True))
            assert all(len(c) <= 171 for c in chunks)
            assert np.array_equal(np.concatenate(chunks), seq)

    def test_header_metadata_survives(self, tmp_path):
        wl = workload(name="named")
        store = write_store(tmp_path / "a.trc", wl, meta={"extra": 5})
        assert store.name == "named"
        assert store.meta["kind"] == "synthetic"
        assert store.meta["extra"] == 5
        assert store.allow_shared is False

    def test_empty_workload(self, tmp_path):
        wl = ParallelWorkload(sequences=[], name="empty")
        store = write_store(tmp_path / "e.trc", wl)
        assert store.p == 0
        assert store.total_requests == 0
        assert store.verify()
        assert store.content_digest == workload_fingerprint(wl)

    def test_empty_sequence_among_nonempty(self, tmp_path):
        wl = ParallelWorkload(
            sequences=[np.asarray([], dtype=np.int64), np.asarray([5, 6, 7])], name="mixed"
        )
        store = write_store(tmp_path / "m.trc", wl)
        assert store.lengths == (0, 3)
        assert list(store.iter_chunks(0)) == []
        assert np.array_equal(store.column(1), [5, 6, 7])
        assert store.verify()

    def test_allow_shared_round_trips(self, tmp_path):
        wl = ParallelWorkload(
            sequences=[np.asarray([1, 2]), np.asarray([2, 3])], allow_shared=True
        )
        store = write_store(tmp_path / "s.trc", wl)
        assert store.allow_shared is True
        assert store.workload().allow_shared is True

    def test_disjointness_enforced_at_write(self, tmp_path):
        with pytest.raises(ValueError, match="allow_shared"):
            with StoreWriter(tmp_path / "c.trc", name="clash") as writer:
                writer.append(0, np.asarray([7]))
                writer.append(1, np.asarray([7]))
        assert not (tmp_path / "c.trc").exists()


class TestDigests:
    def test_content_digest_equals_workload_fingerprint(self, tmp_path):
        wl = workload()
        store = write_store(tmp_path / "a.trc", wl, chunk_rows=500)
        assert store.content_digest == workload_fingerprint(wl)
        assert store.content_digest == content_digest_of(wl.sequences)

    def test_digest_independent_of_chunking(self, tmp_path):
        wl = workload()
        a = write_store(tmp_path / "a.trc", wl, chunk_rows=100)
        b = write_store(tmp_path / "b.trc", wl, chunk_rows=1 << 14)
        assert a.content_digest == b.content_digest

    def test_digest_sensitive_to_content(self, tmp_path):
        wl = workload()
        other = ParallelWorkload(
            sequences=[s.copy() for s in wl.sequences], name=wl.name
        )
        other.sequences[0][0] += 1
        a = write_store(tmp_path / "a.trc", wl)
        b = write_store(tmp_path / "b.trc", other)
        assert a.content_digest != b.content_digest

    def test_verify_passes_on_clean_store(self, tmp_path):
        store = write_store(tmp_path / "a.trc", workload(), chunk_rows=64)
        assert store.verify()


class TestStoredWorkload:
    def test_mmap_workload_is_zero_copy_and_digested(self, tmp_path):
        wl = workload()
        store = write_store(tmp_path / "a.trc", wl)
        swl = store.workload()
        assert isinstance(swl, StoredWorkload)
        assert swl.content_digest == store.content_digest
        assert workload_fingerprint(swl) == workload_fingerprint(wl)
        for a, b in zip(swl.sequences, wl.sequences):
            assert np.array_equal(a, b)

    def test_ram_mode_returns_plain_workload(self, tmp_path):
        wl = workload()
        store = write_store(tmp_path / "a.trc", wl)
        rwl = store.workload(mode="ram")
        assert type(rwl) is ParallelWorkload
        assert all(np.array_equal(a, b) for a, b in zip(rwl.sequences, wl.sequences))

    def test_pickle_ships_path_not_data(self, tmp_path):
        store = write_store(tmp_path / "a.trc", workload())
        swl = store.workload()
        blob = pickle.dumps(swl)
        # far smaller than the 48KB of sequence data
        assert len(blob) < 2000
        clone = pickle.loads(blob)
        assert isinstance(clone, StoredWorkload)
        assert np.array_equal(clone.sequences[2], swl.sequences[2])

    def test_open_workload_helper(self, tmp_path):
        wl = workload()
        write_store(tmp_path / "a.trc", wl)
        swl = open_workload(tmp_path / "a.trc")
        assert np.array_equal(swl.sequences[0], wl.sequences[0])


class TestCorruption:
    def _store_path(self, tmp_path):
        return write_store(tmp_path / "a.trc", workload(), chunk_rows=256).path

    def test_bad_magic_is_format_error(self, tmp_path):
        path = tmp_path / "junk.trc"
        path.write_bytes(b"definitely not a trace store at all")
        with pytest.raises(TraceFormatError, match="bad magic"):
            TraceStore(path)

    def test_truncated_payload_is_corrupt_error(self, tmp_path):
        path = self._store_path(tmp_path)
        path.write_bytes(path.read_bytes()[:-64])
        with pytest.raises(TraceCorruptError, match="truncated or partially written"):
            TraceStore(path)

    def test_truncated_header_is_corrupt_error(self, tmp_path):
        path = self._store_path(tmp_path)
        (tmp_path / "t.trc").write_bytes(path.read_bytes()[:12])
        with pytest.raises(TraceCorruptError, match="truncated store header"):
            TraceStore(tmp_path / "t.trc")

    def test_flipped_payload_bit_fails_chunk_digest(self, tmp_path):
        path = self._store_path(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[-3] ^= 0x40
        path.write_bytes(raw)
        store = TraceStore(path)  # header untouched: opens fine
        with pytest.raises(TraceCorruptError, match="digest"):
            store.verify()

    def test_iter_chunks_verify_raises_before_yield(self, tmp_path):
        path = self._store_path(tmp_path)
        raw = bytearray(path.read_bytes())
        store = TraceStore(path)
        raw[store._data_start] ^= 0xFF  # first chunk of column 0
        path.write_bytes(raw)
        store = TraceStore(path)
        it = store.iter_chunks(0, verify=True)
        with pytest.raises(TraceCorruptError):
            next(it)
        # unverified iteration happily yields (that's the contract)
        assert len(next(store.iter_chunks(0))) > 0

    def test_garbage_json_header_is_corrupt_error(self, tmp_path):
        path = self._store_path(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[20] = 0xFF  # inside the JSON header
        (tmp_path / "g.trc").write_bytes(raw)
        with pytest.raises((TraceCorruptError, TraceFormatError)):
            TraceStore(tmp_path / "g.trc")

    def test_future_version_is_version_error(self, tmp_path):
        path = self._store_path(tmp_path)
        full = path.read_bytes()
        (header_len,) = struct.unpack("<Q", full[8:16])
        header = json.loads(full[16 : 16 + header_len])
        header["version"] = 99
        hb = json.dumps(header, sort_keys=True).encode()
        new = MAGIC + struct.pack("<Q", len(hb)) + hb
        new += b"\x00" * ((-len(new)) % 64)
        old_start = (16 + header_len) + ((-(16 + header_len)) % 64)
        new += full[old_start:]
        (tmp_path / "v.trc").write_bytes(new)
        with pytest.raises(TraceVersionError, match="version 99"):
            TraceStore(tmp_path / "v.trc")

    def test_missing_file_is_format_error(self, tmp_path):
        with pytest.raises(TraceFormatError, match="cannot read"):
            TraceStore(tmp_path / "nope.trc")


class TestWriterHygiene:
    def test_no_spool_or_temp_residue(self, tmp_path):
        write_store(tmp_path / "a.trc", workload())
        residue = [p for p in tmp_path.iterdir() if p.name != "a.trc"]
        assert residue == []

    def test_abort_on_error_leaves_nothing(self, tmp_path):
        with pytest.raises(RuntimeError):
            with StoreWriter(tmp_path / "x.trc") as writer:
                writer.append(0, np.arange(10))
                raise RuntimeError("boom")
        assert list(tmp_path.iterdir()) == []

    def test_writer_rejects_use_after_close(self, tmp_path):
        writer = StoreWriter(tmp_path / "x.trc")
        writer.append(0, np.arange(4))
        writer.close()
        with pytest.raises(RuntimeError, match="closed"):
            writer.append(0, np.arange(4))

    def test_declared_p_pads_empty_columns(self, tmp_path):
        with StoreWriter(tmp_path / "x.trc", p=4) as writer:
            writer.append(1, np.asarray([3, 4]))
            store = writer.close()
        assert store.p == 4
        assert store.lengths == (0, 2, 0, 0)
