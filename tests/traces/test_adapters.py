"""Trace adapters: format sniffing, kv/address ingest, compressed sources."""

from __future__ import annotations

import gzip
import lzma

import numpy as np
import pytest

from repro.exec import workload_fingerprint
from repro.traces import (
    TraceFormatError,
    import_trace,
    read_kv_trace,
    sniff_format,
    stream_trace_blocks,
)
from repro.workloads import ParallelWorkload
from repro.workloads.formats import write_trace_text

RNG = np.random.default_rng(11)


def workload(p=2, n=800):
    return ParallelWorkload(
        sequences=[RNG.integers(0, 50, size=n) + 500 * i for i in range(p)], name="adapt"
    )


class TestSniffing:
    def test_suffixes(self, tmp_path):
        for name, expected in [
            ("a.trc", "store"),
            ("a.npz", "npz"),
            ("a.csv", "kv"),
            ("a.tsv", "kv"),
            ("a.trc.gz", "store"),
            ("a.csv.xz", "kv"),
        ]:
            (tmp_path / name).write_bytes(b"")
            assert sniff_format(tmp_path / name) == expected

    def test_content_sniffing(self, tmp_path):
        cases = [
            ("3 17\n4 18\n", "trace"),
            ("17\n18\n", "sequence"),
            ("0xdeadbeef\n0xcafe\n", "address"),
            ("17,alpha,3\n", "kv"),
            ("# only a comment\n", "sequence"),
            ("", "sequence"),
        ]
        for i, (content, expected) in enumerate(cases):
            path = tmp_path / f"c{i}.txt"
            path.write_text(content)
            assert sniff_format(path) == expected, content


class TestSequenceAndParallel:
    def test_sequence_import_gzip(self, tmp_path):
        seq = RNG.integers(0, 99, size=700)
        with gzip.open(tmp_path / "s.txt.gz", "wt") as fh:
            fh.write("# header comment\n")
            fh.write("\n".join(map(str, seq.tolist())))
        store = import_trace(tmp_path / "s.txt.gz", tmp_path / "s.trc", chunk_rows=128)
        assert np.array_equal(store.column(0), seq)
        assert store.content_digest == workload_fingerprint(
            ParallelWorkload(sequences=[seq])
        )

    def test_parallel_text_import_matches_store_of_same_workload(self, tmp_path):
        wl = workload()
        write_trace_text(wl, tmp_path / "t.txt")
        store = import_trace(tmp_path / "t.txt", tmp_path / "t.trc")
        assert store.p == wl.p
        assert store.content_digest == workload_fingerprint(wl)
        assert store.meta["source_format"] == "trace"

    def test_parallel_import_enforces_disjointness(self, tmp_path):
        (tmp_path / "clash.txt").write_text("0 9\n1 9\n")
        with pytest.raises(ValueError, match="allow_shared"):
            import_trace(tmp_path / "clash.txt", tmp_path / "c.trc")
        store = import_trace(tmp_path / "clash.txt", tmp_path / "c.trc", allow_shared=True)
        assert store.allow_shared

    def test_npz_import(self, tmp_path):
        wl = workload()
        wl.save(tmp_path / "w.npz")
        store = import_trace(tmp_path / "w.npz", tmp_path / "w.trc")
        assert store.content_digest == workload_fingerprint(wl)

    def test_store_reimport_rechunks(self, tmp_path):
        from repro.traces import write_store

        wl = workload()
        original = write_store(tmp_path / "a.trc", wl, chunk_rows=64)
        rechunked = import_trace(tmp_path / "a.trc", tmp_path / "b.trc", chunk_rows=512)
        assert rechunked.chunk_rows == 512
        assert rechunked.content_digest == original.content_digest


class TestAddressTraces:
    def test_hex_and_decimal_fold_to_pages(self, tmp_path):
        addrs = RNG.integers(0, 1 << 28, size=500)
        lines = [
            (f"0x{a:x}" if i % 2 else str(a)) for i, a in enumerate(addrs.tolist())
        ]
        (tmp_path / "a.txt").write_text("\n".join(lines) + "\n")
        store = import_trace(tmp_path / "a.txt", tmp_path / "a.trc", fmt="address", page_size=4096)
        assert np.array_equal(store.column(0), addrs // 4096)
        assert store.meta["page_size"] == 4096

    def test_xz_compressed_address_trace(self, tmp_path):
        addrs = RNG.integers(0, 1 << 20, size=300)
        with lzma.open(tmp_path / "a.txt.xz", "wt") as fh:
            fh.write("\n".join(f"0x{a:x}" for a in addrs.tolist()))
        store = import_trace(tmp_path / "a.txt.xz", tmp_path / "a.trc", fmt="address", page_size=512)
        assert np.array_equal(store.column(0), addrs // 512)

    def test_negative_address_rejected(self, tmp_path):
        (tmp_path / "a.txt").write_text("100\n-4\n")
        with pytest.raises(TraceFormatError, match="negative address"):
            import_trace(tmp_path / "a.txt", tmp_path / "a.trc", fmt="address")


class TestKVTraces:
    def test_keys_relabel_densely_in_first_seen_order(self, tmp_path):
        (tmp_path / "kv.csv").write_text(
            "# ts,key\n1,banana\n2,apple\n3,banana\n4,cherry\n"
        )
        wl = read_kv_trace(tmp_path / "kv.csv", key_field=1)
        assert np.array_equal(wl.sequences[0], [0, 1, 0, 2])
        assert wl.meta["distinct_keys"] == 3

    def test_proc_field_shards_and_allows_sharing(self, tmp_path):
        (tmp_path / "kv.csv").write_text("1,k1,0\n2,k2,1\n3,k1,1\n4,k3,0\n5,k1,0\n")
        store = import_trace(
            tmp_path / "kv.csv", tmp_path / "kv.trc", fmt="kv", key_field=1, proc_field=2
        )
        assert store.p == 2
        assert store.allow_shared  # same key may hit several shards
        assert np.array_equal(store.column(0), [0, 2, 0])
        assert np.array_equal(store.column(1), [1, 0])

    def test_kv_and_read_kv_trace_agree(self, tmp_path):
        lines = [f"{i},key{RNG.integers(0, 20)},{RNG.integers(0, 3)}" for i in range(400)]
        (tmp_path / "kv.csv").write_text("\n".join(lines) + "\n")
        wl = read_kv_trace(tmp_path / "kv.csv", key_field=1, proc_field=2)
        store = import_trace(
            tmp_path / "kv.csv", tmp_path / "kv2.trc", fmt="kv", key_field=1, proc_field=2
        )
        assert store.content_digest == workload_fingerprint(wl)

    def test_bad_record_is_format_error(self, tmp_path):
        (tmp_path / "kv.csv").write_text("1,k1,0\n2,k2,not-an-int\n")
        with pytest.raises(TraceFormatError, match="bad kv record"):
            import_trace(tmp_path / "kv.csv", tmp_path / "kv.trc", fmt="kv", key_field=1, proc_field=2)

    def test_tsv_delimiter(self, tmp_path):
        (tmp_path / "kv.tsv").write_text("a\tx\nb\ty\na\tz\n")
        wl = read_kv_trace(tmp_path / "kv.tsv", key_field=0, delimiter="\t")
        assert np.array_equal(wl.sequences[0], [0, 1, 0])


class TestStreaming:
    def test_stream_trace_blocks_bounded_blocks(self, tmp_path):
        wl = workload(p=3, n=2000)
        write_trace_text(wl, tmp_path / "t.txt")
        rebuilt = {i: [] for i in range(3)}
        for proc, pages in stream_trace_blocks(tmp_path / "t.txt", "trace", block_bytes=512):
            assert len(pages) * 8 <= 4096  # blocks stay small with a small byte budget
            rebuilt[proc].append(pages)
        for i in range(3):
            assert np.array_equal(np.concatenate(rebuilt[i]), wl.sequences[i])

    def test_unknown_format_raises(self, tmp_path):
        (tmp_path / "x.txt").write_text("1\n")
        with pytest.raises(ValueError, match="unknown trace format"):
            import_trace(tmp_path / "x.txt", tmp_path / "x.trc", fmt="wat")
        with pytest.raises(ValueError, match="does not stream"):
            list(stream_trace_blocks(tmp_path / "x.txt", "npz"))
