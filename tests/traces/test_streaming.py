"""Streaming equivalence: store-fed simulation and statistics are
bit-identical to the in-memory paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.paging import execute_profile, execute_profile_streaming
from repro.traces import write_store
from repro.traces.stream import (
    characterize_store,
    characterize_store_all,
    execute_store_profile,
)
from repro.workloads import ParallelWorkload
from repro.workloads.stats import characterize

RNG = np.random.default_rng(31)


def split_random(seq, rng):
    """Cut a sequence into random-length consecutive chunks."""
    cuts = sorted(rng.choice(len(seq) + 1, size=rng.integers(0, 8), replace=True).tolist())
    parts = np.split(seq, cuts)
    return [p for p in parts]


class TestExecuteProfileStreaming:
    @pytest.mark.parametrize("trial", range(20))
    def test_random_equivalence(self, trial):
        rng = np.random.default_rng(1000 + trial)
        seq = rng.integers(0, rng.integers(4, 80), size=rng.integers(0, 3000))
        heights = rng.integers(1, 40, size=200).tolist()
        mc = int(rng.integers(2, 12))
        start = int(rng.integers(0, max(len(seq), 1)))
        max_boxes = int(rng.integers(1, 60)) if rng.random() < 0.5 else None
        ref = execute_profile(seq, heights, mc, start=start, max_boxes=max_boxes)
        got = execute_profile_streaming(
            split_random(seq, rng), heights, mc, start=start, max_boxes=max_boxes
        )
        assert got == ref

    def test_empty_stream(self):
        run = execute_profile_streaming([], [4, 4], miss_cost=3)
        assert run.completed and run.position == 0 and run.runs == ()

    def test_empty_chunks_are_transparent(self):
        seq = np.arange(50) % 7
        empty = np.asarray([], dtype=np.int64)
        chunks = [empty, seq[:10], empty, empty, seq[10:], empty]
        ref = execute_profile(seq, [8] * 100, 4)
        assert execute_profile_streaming(chunks, [8] * 100, 4) == ref

    def test_rejects_2d_chunks(self):
        with pytest.raises(ValueError, match="1-D"):
            execute_profile_streaming([np.zeros((2, 2), dtype=np.int64)], [4], 3)


class TestStoreStreaming:
    @pytest.fixture
    def pair(self, tmp_path):
        wl = ParallelWorkload(
            sequences=[RNG.integers(0, 64, size=5000) + 1000 * i for i in range(2)],
            name="stream-test",
        )
        store = write_store(tmp_path / "s.trc", wl, chunk_rows=321)
        return wl, store

    def test_execute_store_profile_identical(self, pair):
        wl, store = pair
        heights = [4, 16, 64, 256] * 500
        for proc in range(wl.p):
            ref = execute_profile(wl.sequences[proc], heights, 8)
            got = execute_store_profile(store, proc, heights, 8, verify=True)
            assert got == ref
            assert got.completed

    def test_characterize_store_identical(self, pair):
        wl, store = pair
        for window in (1, 37, 1000, 10_000):
            for proc in range(wl.p):
                assert characterize_store(store, proc, window=window) == characterize(
                    wl.sequences[proc], window=window
                )

    def test_characterize_store_all(self, pair):
        wl, store = pair
        stats = characterize_store_all(store, window=200)
        assert set(stats) == {0, 1}
        assert stats[0] == characterize(wl.sequences[0], window=200)
