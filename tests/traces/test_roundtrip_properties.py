"""Property tests: workloads survive text <-> npz <-> store round trips.

Hypothesis drives workload shape (processor count, lengths, page-id
ranges including PAGE_STRIDE boundaries and empty sequences, shared vs
disjoint pages) through every representation; content must come back
byte-identical and the store digest must be representation-independent.
Corruption anywhere in a chunk must surface as a typed error.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec import workload_fingerprint
from repro.traces import TraceCorruptError, TraceStore, write_store
from repro.workloads import ParallelWorkload
from repro.workloads.formats import read_trace_text, write_trace_text
from repro.workloads.trace import PAGE_STRIDE

# page ids probe zero, small values, and the PAGE_STRIDE namespace edges
# (the int64 packing must not mangle any of them)
page_ids = st.one_of(
    st.integers(min_value=0, max_value=50),
    st.integers(min_value=PAGE_STRIDE - 2, max_value=PAGE_STRIDE + 2),
    st.integers(min_value=0, max_value=2**62),
)


@st.composite
def workloads(draw):
    p = draw(st.integers(min_value=0, max_value=4))
    shared = draw(st.booleans())
    sequences = []
    for i in range(p):
        length = draw(st.integers(min_value=0, max_value=40))
        pages = draw(
            st.lists(page_ids, min_size=length, max_size=length)
        )
        if not shared:
            # force disjointness by offsetting into per-processor namespaces
            pages = [page % PAGE_STRIDE + i * PAGE_STRIDE for page in pages]
        sequences.append(np.asarray(pages, dtype=np.int64))
    return ParallelWorkload(sequences=sequences, name="prop", allow_shared=shared)


@st.composite
def chunk_sizes(draw):
    return draw(st.integers(min_value=1, max_value=64))


class TestRoundTrips:
    @given(wl=workloads(), chunk_rows=chunk_sizes())
    @settings(max_examples=60)
    def test_store_round_trip_is_identity(self, tmp_path_factory, wl, chunk_rows):
        tmp = tmp_path_factory.mktemp("prop-store")
        store = write_store(tmp / "w.trc", wl, chunk_rows=chunk_rows)
        assert store.p == wl.p
        for i, seq in enumerate(wl.sequences):
            assert np.array_equal(store.column(i), seq)
            chunks = list(store.iter_chunks(i, verify=True))
            if chunks:
                assert np.array_equal(np.concatenate(chunks), seq)
            else:
                assert len(seq) == 0
        assert store.verify()
        assert store.content_digest == workload_fingerprint(wl)
        back = store.workload()
        assert workload_fingerprint(back) == workload_fingerprint(wl)
        assert back.allow_shared == wl.allow_shared

    @given(wl=workloads())
    @settings(max_examples=40)
    def test_npz_and_store_agree(self, tmp_path_factory, wl):
        tmp = tmp_path_factory.mktemp("prop-npz")
        wl.save(tmp / "w.npz")
        loaded = ParallelWorkload.load(tmp / "w.npz")
        store = write_store(tmp / "w.trc", loaded)
        assert store.content_digest == workload_fingerprint(wl)

    @given(wl=workloads())
    @settings(max_examples=40)
    def test_text_and_store_agree(self, tmp_path_factory, wl):
        tmp = tmp_path_factory.mktemp("prop-text")
        write_trace_text(wl, tmp / "w.txt")
        loaded = read_trace_text(tmp / "w.txt", allow_shared=True)
        # the text format is dense in processor ids: trailing empty
        # sequences are unrepresentable, so compare the written prefix
        assert loaded.p <= wl.p
        for i in range(loaded.p):
            assert np.array_equal(loaded.sequences[i], wl.sequences[i])
        for i in range(loaded.p, wl.p):
            assert len(wl.sequences[i]) == 0
        if loaded.p == wl.p:
            store_a = write_store(tmp / "a.trc", loaded)
            assert store_a.content_digest == workload_fingerprint(wl)

    @given(
        wl=workloads().filter(lambda w: sum(len(s) for s in w.sequences) > 0),
        flip=st.integers(min_value=1, max_value=2**31),
    )
    @settings(max_examples=30)
    def test_any_payload_corruption_is_typed(self, tmp_path_factory, wl, flip):
        tmp = tmp_path_factory.mktemp("prop-corrupt")
        store = write_store(tmp / "w.trc", wl, chunk_rows=7)
        raw = bytearray(store.path.read_bytes())
        data_start = store._data_start
        offset = data_start + flip % (len(raw) - data_start)
        raw[offset] ^= 0xFF
        store.path.write_bytes(raw)
        reopened = TraceStore(store.path)  # header intact, size unchanged
        try:
            reopened.verify()
        except TraceCorruptError:
            return
        raise AssertionError("flipped payload byte passed verify()")
