"""Content-addressed cache: key stability, invalidation, store hygiene."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exec import ResultCache, WorkUnit, corrupt_cache_entry, stable_key, workload_fingerprint
from repro.workloads import ParallelWorkload, cyclic


def workload(n=60, shift=0):
    return ParallelWorkload.from_local([cyclic(n, 4 + shift + i) for i in range(3)])


class TestKeys:
    def test_key_is_deterministic(self):
        wl = workload()
        params = {"algorithm": "det-par", "cache_size": 32, "miss_cost": 8, "seed": 0, "workload": wl}
        assert stable_key("parallel-run", params) == stable_key("parallel-run", dict(params))

    def test_key_changes_with_workload_content(self):
        params = lambda wl: {"algorithm": "det-par", "cache_size": 32, "miss_cost": 8, "seed": 0, "workload": wl}
        assert stable_key("parallel-run", params(workload())) != stable_key(
            "parallel-run", params(workload(shift=1))
        )

    def test_key_ignores_workload_name(self):
        a, b = workload(), workload()
        b.name = "renamed"
        b.meta["extra"] = 1
        assert workload_fingerprint(a) == workload_fingerprint(b)

    @pytest.mark.parametrize("field,value", [("seed", 1), ("miss_cost", 16), ("cache_size", 64)])
    def test_key_changes_with_params(self, field, value):
        wl = workload()
        base = {"algorithm": "det-par", "cache_size": 32, "miss_cost": 8, "seed": 0, "workload": wl}
        changed = dict(base)
        changed[field] = value
        assert stable_key("parallel-run", base) != stable_key("parallel-run", changed)

    def test_key_changes_with_kind(self):
        wl = workload()
        params = {"workload": wl, "k": 16, "miss_cost": 8}
        assert stable_key("mean-lb", params) != stable_key("other-kind", params)

    def test_key_changes_with_array_content(self):
        base = {"k": 16, "p": 4, "miss_cost": 32, "seq": np.arange(50, dtype=np.int64)}
        other = dict(base, seq=np.arange(1, 51, dtype=np.int64))
        assert stable_key("green-opt", base) != stable_key("green-opt", other)

    def test_uncacheable_param_type_rejected(self):
        with pytest.raises(TypeError, match="canonically hash"):
            stable_key("parallel-run", {"bad": object()})

    def test_workunit_key_matches_stable_key(self):
        unit = WorkUnit("mean-lb", {"workload": workload(), "k": 16, "miss_cost": 8})
        assert unit.key() == stable_key("mean-lb", unit.params)


class TestStore:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        hit, _ = cache.load("ab" * 32)
        assert not hit
        cache.store("ab" * 32, {"x": 1})
        hit, value = cache.load("ab" * 32)
        assert hit and value == {"x": 1}

    def test_corrupt_entry_is_a_miss_and_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = "cd" * 32
        cache.store(key, [1, 2, 3])
        corrupt_cache_entry(cache, key)
        hit, _ = cache.load(key)
        assert not hit
        assert not cache._path(key).exists()  # no longer a live entry
        bad = cache._path(key).with_name(cache._path(key).name + ".bad")
        assert bad.exists()  # preserved for post-mortem, not silently dropped
        assert cache.quarantined == 1
        stats = cache.stats()
        assert stats.quarantined == 1
        assert "1 quarantined" in stats.render()
        # the slot is reusable: a fresh store works and loads cleanly
        cache.store(key, [4, 5])
        hit, value = cache.load(key)
        assert hit and value == [4, 5]

    def test_clear_removes_quarantined_files(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = "ef" * 32
        cache.store(key, "v")
        corrupt_cache_entry(cache, key)
        cache.load(key)  # quarantines
        assert cache.clear() == 0  # no live entries ...
        assert cache.stats().quarantined == 0  # ... and the .bad file is gone too

    def test_clear_and_stats(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        for i in range(5):
            cache.store(f"{i:02x}" + "0" * 62, i)
        stats = cache.stats()
        assert stats.entries == 5 and stats.size_bytes > 0
        assert "5 entries" in stats.render()
        assert cache.clear() == 5
        assert cache.stats().entries == 0

    def test_env_var_default_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        assert ResultCache().root == tmp_path / "envcache"
