"""Zero-copy worker handoff: handles instead of arrays on the pool path.

The contract: pool workers receive *handles* — a ``.trc`` path for
spilled workloads, :class:`ShmArray` names for shared request arrays —
never the arrays themselves, so the pickled payload stays bounded (and
per-worker RSS flat) as traces grow.  Rebuilt parameters must produce
byte-identical outcomes, the thresholds must be env-tunable, and the
manager must release every segment and spill file on close.
"""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from repro.exec import ExecutionEngine, WorkUnit, execute_unit
from repro.exec.handoff import (
    DEFAULT_SHM_ROWS,
    SHM_ROWS_ENV,
    SPILL_ROWS_ENV,
    HandoffManager,
    PreparedTask,
    ShmArray,
    execute_prepared,
)
from repro.obs import metrics as M
from repro.paging.kernel import clear_kernel_cache, get_kernel
from repro.traces.store import StoredWorkload
from repro.workloads import ParallelWorkload, cyclic


def green_unit(n=200, k=8, p=2, seq=None):
    if seq is None:
        seq = cyclic(n, 6)
    return WorkUnit(
        "det-green", {"seq": seq, "k": k, "p": p, "miss_cost": 4}, label="g"
    )


def run_unit(wl):
    return WorkUnit(
        "parallel-run",
        {"algorithm": "det-par", "workload": wl, "cache_size": 16, "miss_cost": 8, "seed": 0},
    )


class TestPrepare:
    def test_small_units_pass_through_unchanged(self):
        unit = green_unit(n=100)
        with HandoffManager() as m:
            assert m.prepare(unit) is unit

    def test_large_seq_becomes_shm_handle(self):
        seq = cyclic(DEFAULT_SHM_ROWS, 9)
        unit = green_unit(seq=seq)
        with HandoffManager() as m:
            task = m.prepare(unit)
            assert isinstance(task, PreparedTask)
            assert isinstance(task.params["seq"], ShmArray)
            assert task.kind == unit.kind and task.label == unit.label

    def test_large_workload_spills_to_store(self, tmp_path):
        wl = ParallelWorkload.from_local([cyclic(40_000, 50), cyclic(40_000, 60)])
        with HandoffManager(spill_dir=tmp_path) as m:
            task = m.prepare(run_unit(wl))
            assert isinstance(task, PreparedTask)
            stored = task.params["workload"]
            assert isinstance(stored, StoredWorkload)
            # a StoredWorkload pickles as its path: tiny and worker-reopenable
            assert len(pickle.dumps(task)) < 2048

    def test_pickled_payload_bounded_as_trace_grows(self):
        sizes = []
        for rows in (1 << 14, 1 << 16, 1 << 18):
            with HandoffManager() as m:
                task = m.prepare(green_unit(seq=cyclic(rows, 12)))
                sizes.append(len(pickle.dumps(task)))
        # 16x more rows, same wire bytes: the payload is a name + a length
        assert max(sizes) < 2048
        assert max(sizes) - min(sizes) < 64

    def test_shared_array_deduped_across_units(self):
        seq = cyclic(DEFAULT_SHM_ROWS, 9)
        with M.collecting() as reg:
            with HandoffManager() as m:
                a = m.prepare(green_unit(seq=seq))
                b = m.prepare(green_unit(seq=seq))
                assert a.params["seq"] == b.params["seq"]
        assert reg.snapshot()["counters"]["exec.handoff.shm_segments"] == 1

    def test_zero_threshold_disables_sharing(self, monkeypatch):
        monkeypatch.setenv(SHM_ROWS_ENV, "0")
        monkeypatch.setenv(SPILL_ROWS_ENV, "0")
        unit = green_unit(seq=cyclic(1 << 16, 9))
        with HandoffManager() as m:
            assert m.prepare(unit) is unit


class TestExecutePrepared:
    def test_outcome_identical_to_direct_execution(self):
        seq = cyclic(DEFAULT_SHM_ROWS, 9)
        unit = green_unit(seq=seq)
        direct = execute_unit(unit)
        with HandoffManager() as m:
            task = m.prepare(unit)
            got = execute_prepared(task)
        assert got.value == direct.value
        assert got.sim_steps == direct.sim_steps

    def test_worker_materializes_same_array_object_per_segment(self):
        # repeated units over one segment must hand executors the *same*
        # ndarray, so the id-keyed kernel cache stays warm across units
        from repro.exec import handoff

        seq = cyclic(DEFAULT_SHM_ROWS, 9)
        with HandoffManager() as m:
            task = m.prepare(green_unit(seq=seq))
            handle = task.params["seq"]
            first = handoff._materialize(handle)
            second = handoff._materialize(handle)
            assert first is second
            assert np.array_equal(first, seq)

    def test_seed_ships_when_same_seq_feeds_two_units(self):
        clear_kernel_cache()
        seq = cyclic(DEFAULT_SHM_ROWS, 9)
        units = [green_unit(seq=seq), green_unit(seq=seq)]
        with M.collecting() as reg:
            with HandoffManager() as m:
                tasks = m.prepare_batch(units, [0, 1])
                assert all(isinstance(t, PreparedTask) for t in tasks)
                assert tasks[0].seed is not None
                direct = execute_unit(units[0])
                assert execute_prepared(tasks[0]).value == direct.value
        counters = reg.snapshot()["counters"]
        assert counters["exec.handoff.seeded"] >= 1

    def test_seed_ships_when_parent_kernel_cached(self):
        clear_kernel_cache()
        seq = cyclic(DEFAULT_SHM_ROWS, 9)
        get_kernel(seq)  # parent already paid the sweep
        with HandoffManager() as m:
            tasks = m.prepare_batch([green_unit(seq=seq)], [0])
            assert tasks[0].seed is not None
        clear_kernel_cache()

    def test_singleton_without_cached_kernel_ships_no_seed(self):
        clear_kernel_cache()
        with HandoffManager() as m:
            tasks = m.prepare_batch([green_unit(seq=cyclic(DEFAULT_SHM_ROWS, 9))], [0])
            assert isinstance(tasks[0], PreparedTask)
            assert tasks[0].seed is None

    def test_prepared_seed_arrays_match_parent_kernel(self):
        from repro.exec import handoff

        clear_kernel_cache()
        seq = cyclic(DEFAULT_SHM_ROWS, 9)
        kern = get_kernel(seq)
        with HandoffManager() as m:
            task = m.prepare_batch([green_unit(seq=seq)], [0])[0]
            prev, reuse = task.seed
            assert np.array_equal(handoff._materialize(prev), kern.prev_occ)
            assert np.array_equal(handoff._materialize(reuse), kern.reuse_dist)
        clear_kernel_cache()


class TestLifecycle:
    def test_close_unlinks_segments(self):
        from multiprocessing import shared_memory

        with HandoffManager() as m:
            task = m.prepare(green_unit(seq=cyclic(DEFAULT_SHM_ROWS, 9)))
            name = task.params["seq"].name
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_close_removes_owned_spill_dir_and_is_idempotent(self):
        wl = ParallelWorkload.from_local([cyclic(40_000, 50), cyclic(40_000, 60)])
        m = HandoffManager()
        task = m.prepare(run_unit(wl))
        path = task.params["workload"].store_path
        assert os.path.exists(path)
        m.close()
        assert not os.path.exists(path)
        m.close()  # idempotent

    def test_external_spill_dir_is_preserved(self, tmp_path):
        wl = ParallelWorkload.from_local([cyclic(40_000, 50), cyclic(40_000, 60)])
        with HandoffManager(spill_dir=tmp_path) as m:
            task = m.prepare(run_unit(wl))
            path = task.params["workload"].store_path
        assert os.path.exists(path)  # caller-owned directory: not ours to delete


class TestPoolIntegration:
    def test_pooled_results_identical_with_handoff(self):
        # big enough to cross both thresholds with the default env
        seq = cyclic(DEFAULT_SHM_ROWS, 9)
        wl = ParallelWorkload.from_local([cyclic(40_000, 50), cyclic(40_000, 60)])
        units = [green_unit(seq=seq), green_unit(seq=seq), run_unit(wl)]
        serial = ExecutionEngine(jobs=1).run(units)
        pooled = ExecutionEngine(jobs=2).run(units)
        assert serial == pooled

    def test_pool_path_actually_uses_handles(self):
        seq = cyclic(DEFAULT_SHM_ROWS, 9)
        units = [green_unit(seq=seq), green_unit(seq=seq)]
        with M.collecting() as reg:
            ExecutionEngine(jobs=2).run(units)
        counters = reg.snapshot()["counters"]
        assert counters.get("exec.handoff.shm_segments", 0) >= 1
