"""Chaos tests: injected crashes, kills, hangs, and interrupts vs the engine.

The load-bearing claims: every failure mode recovers to values
*byte-identical* to a clean serial run, and the serial and pool
execution paths fail the same way.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.exec import (
    ExecutionEngine,
    ExecutionPolicy,
    FailedCell,
    FaultSpec,
    InjectedFault,
    ResultCache,
    Telemetry,
    UnitExecutionError,
    WorkUnit,
    corrupt_cache_entry,
    inject_faults,
)
from repro.exec.faults import FAULTS_ENV, FAULTS_STATE_ENV, active_faults
from repro.workloads import cyclic

pytestmark = pytest.mark.chaos


def green_units(n=6, tag="chaos"):
    seq = cyclic(100, 6)
    return [
        WorkUnit(
            "rand-green",
            {"seq": seq, "k": 8, "p": 2, "miss_cost": 4, "entropy": 17, "spawn_key": (i,)},
            label=f"{tag}/u{i}",
        )
        for i in range(n)
    ]


def clean_serial_values(units):
    return ExecutionEngine(jobs=1).run(units)


# --------------------------------------------------------------------- #
# spec parsing and claim accounting
# --------------------------------------------------------------------- #
def test_spec_roundtrip():
    spec = FaultSpec(mode="hang", match="e1/rand", times=3, delay_s=2.5)
    assert FaultSpec.parse(spec.encode()) == spec
    assert FaultSpec.parse("crash:lbl") == FaultSpec(mode="crash", match="lbl")


@pytest.mark.parametrize("text", ["", "crash", "nope:x", "crash:a:b:c:d"])
def test_bad_specs_rejected(text):
    with pytest.raises(ValueError):
        FaultSpec.parse(text)


def test_match_may_not_contain_separators():
    with pytest.raises(ValueError, match="':' or ','"):
        FaultSpec(mode="crash", match="a:b")


def test_inject_faults_scopes_env():
    assert active_faults() == []
    with inject_faults("crash:xyz:2"):
        faults = active_faults()
        assert len(faults) == 1 and faults[0].times == 2
        state = os.environ[FAULTS_STATE_ENV]
        assert os.path.isdir(state)
    assert os.environ.get(FAULTS_ENV) is None
    assert not os.path.isdir(state)  # state dir cleaned up


def test_times_bounds_triggers_across_claims():
    unit = green_units(1, tag="claims")[0]
    with inject_faults("crash:claims/u0:2"):
        for _ in range(2):
            with pytest.raises(InjectedFault):
                from repro.exec.units import execute_unit

                execute_unit(unit)
        # third execution: the two slots are spent, unit runs clean
        from repro.exec.units import execute_unit

        assert execute_unit(unit).value is not None


# --------------------------------------------------------------------- #
# crash / flaky: serial vs pool parity
# --------------------------------------------------------------------- #
def test_flaky_unit_recovers_identically_serial_and_pooled():
    units = green_units(4, tag="flaky")
    clean = clean_serial_values(units)
    policy = ExecutionPolicy(retries=2, backoff_s=0.01)

    with inject_faults("flaky:flaky/u1:2"):
        serial = ExecutionEngine(jobs=1, policy=policy).run(units)
    with inject_faults("flaky:flaky/u1:2"):
        pooled = ExecutionEngine(jobs=2, policy=policy).run(units)

    assert pickle.dumps(serial) == pickle.dumps(clean)
    assert pickle.dumps(pooled) == pickle.dumps(clean)


def test_exhausted_retries_fail_fast_in_both_paths():
    units = green_units(3, tag="dead")
    policy = ExecutionPolicy(retries=1, backoff_s=0.01)
    for jobs in (1, 2):
        with inject_faults("crash:dead/u0:0"):  # unlimited: never succeeds
            with pytest.raises(UnitExecutionError, match="failed after 2 attempt"):
                ExecutionEngine(jobs=jobs, policy=policy).run(units)


def test_keep_going_marks_cell_and_finishes_batch():
    units = green_units(4, tag="keep")
    clean = clean_serial_values(units)
    policy = ExecutionPolicy(retries=0, keep_going=True)
    for jobs in (1, 2):
        telemetry = Telemetry()
        with inject_faults("crash:keep/u2:0"):
            values = ExecutionEngine(jobs=jobs, policy=policy, telemetry=telemetry).run(units)
        assert isinstance(values[2], FailedCell)
        assert values[2].error_type == "InjectedFault"
        for i in (0, 1, 3):
            assert pickle.dumps(values[i]) == pickle.dumps(clean[i])
        summary = telemetry.summary()
        assert summary["failed"] == 1
        assert [r.label for r in telemetry.failures()] == ["keep/u2"]


# --------------------------------------------------------------------- #
# kill: a worker dies mid-batch (BrokenProcessPool recovery)
# --------------------------------------------------------------------- #
def test_killed_worker_mid_batch_recovers_byte_identical():
    units = green_units(6, tag="kill")
    clean = clean_serial_values(units)
    policy = ExecutionPolicy(retries=1, backoff_s=0.01)
    with inject_faults("kill:kill/u3:1"):
        values = ExecutionEngine(jobs=2, policy=policy).run(units)
    # the pool was rebuilt and every unit (including innocents whose
    # futures the broken pool discarded) re-ran to the same answer
    assert pickle.dumps(values) == pickle.dumps(clean)


def test_killed_worker_without_retries_fails_fast():
    units = green_units(4, tag="kill2")
    with inject_faults("kill:kill2/u1:1"):
        with pytest.raises(UnitExecutionError):
            ExecutionEngine(jobs=2, policy=ExecutionPolicy(retries=0)).run(units)


def test_killed_worker_keep_going_marks_only_victims():
    units = green_units(5, tag="kill3")
    clean = clean_serial_values(units)
    policy = ExecutionPolicy(retries=1, backoff_s=0.01, keep_going=True)
    with inject_faults("kill:kill3/u0:2"):  # kills the first attempt AND its retry
        values = ExecutionEngine(jobs=2, policy=policy).run(units)
    assert isinstance(values[0], FailedCell)
    assert values[0].error_type == "BrokenProcessPool"
    for i in range(1, 5):
        assert pickle.dumps(values[i]) == pickle.dumps(clean[i])


# --------------------------------------------------------------------- #
# hang: per-unit timeout tears the pool down and moves on
# --------------------------------------------------------------------- #
def test_hung_worker_times_out_and_batch_recovers():
    units = green_units(5, tag="hang")
    clean = clean_serial_values(units)
    policy = ExecutionPolicy(timeout_s=1.0, retries=1, backoff_s=0.01)
    with inject_faults("hang:hang/u2:1:60"):
        values = ExecutionEngine(jobs=2, policy=policy).run(units)
    assert pickle.dumps(values) == pickle.dumps(clean)


def test_hung_worker_exhausts_attempts_to_failed_cell():
    units = green_units(3, tag="hang2")
    policy = ExecutionPolicy(timeout_s=0.5, retries=0, keep_going=True)
    telemetry = Telemetry()
    with inject_faults("hang:hang2/u1:0:60"):  # hangs on every attempt
        values = ExecutionEngine(jobs=2, policy=policy, telemetry=telemetry).run(units)
    assert isinstance(values[1], FailedCell)
    assert values[1].error_type == "UnitTimeoutError"
    assert not isinstance(values[0], FailedCell) and not isinstance(values[2], FailedCell)


def test_serial_timeout_matches_pool_semantics():
    units = green_units(3, tag="hang3")
    policy = ExecutionPolicy(timeout_s=0.5, retries=0, keep_going=True)
    with inject_faults("hang:hang3/u1:0:60"):
        values = ExecutionEngine(jobs=1, policy=policy).run(units)
    assert isinstance(values[1], FailedCell)
    assert values[1].error_type == "UnitTimeoutError"


# --------------------------------------------------------------------- #
# corrupt cache entries: quarantined, recomputed, byte-identical
# --------------------------------------------------------------------- #
def test_corrupt_cache_entry_recomputed_identically(tmp_path):
    units = green_units(3, tag="corrupt")
    cache = ResultCache(tmp_path / "c")
    engine = ExecutionEngine(jobs=1, cache=cache)
    first = engine.run(units)
    corrupt_cache_entry(cache, units[1].key())

    telemetry = Telemetry()
    again = ExecutionEngine(jobs=1, cache=cache, telemetry=telemetry).run(units)
    assert pickle.dumps(again) == pickle.dumps(first)
    summary = telemetry.summary()
    assert summary["cache_hits"] == 2 and summary["cache_misses"] == 1
    assert cache.quarantined == 1


# --------------------------------------------------------------------- #
# failed cells are never cached
# --------------------------------------------------------------------- #
def test_failed_cells_not_cached(tmp_path):
    units = green_units(2, tag="nocache")
    cache = ResultCache(tmp_path / "c")
    policy = ExecutionPolicy(retries=0, keep_going=True)
    with inject_faults("crash:nocache/u0:0"):
        values = ExecutionEngine(jobs=1, cache=cache, policy=policy).run(units)
    assert isinstance(values[0], FailedCell)
    # after the fault clears, the failed cell recomputes to a real value
    recovered = ExecutionEngine(jobs=1, cache=cache).run(units)
    assert not isinstance(recovered[0], FailedCell)
    clean = clean_serial_values(units)
    assert pickle.dumps(recovered) == pickle.dumps(clean)
