"""Run checkpoints: manifest roundtrip, unit journal, resume bookkeeping."""

from __future__ import annotations

import json

import pytest

from repro.exec import (
    ExecutionEngine,
    RunCheckpoint,
    RunManifest,
    WorkUnit,
    list_runs,
    new_run_id,
)
from repro.exec.checkpoint import default_runs_dir
from repro.workloads import cyclic


def start(tmp_path, run_id="r1", names=("e1", "e8")):
    return RunCheckpoint.start(
        list(names), {"scale": "quick", "seed": 0, "jobs": 2}, root=tmp_path, run_id=run_id
    )


def test_new_run_ids_are_unique_and_safe():
    a, b = new_run_id(), new_run_id()
    assert a != b
    assert "/" not in a and " " not in a


def test_start_save_load_roundtrip(tmp_path):
    ckpt = start(tmp_path)
    assert ckpt.manifest_path.exists()
    loaded = RunCheckpoint.load("r1", root=tmp_path)
    assert loaded.manifest == ckpt.manifest
    assert loaded.manifest.status == "running"
    assert loaded.manifest.config["scale"] == "quick"


def test_load_unknown_run_lists_known(tmp_path):
    start(tmp_path, run_id="exists")
    with pytest.raises(FileNotFoundError, match="exists"):
        RunCheckpoint.load("missing", root=tmp_path)


def test_remaining_skips_completed(tmp_path):
    ckpt = start(tmp_path, names=("e1", "e8", "e9"))
    assert ckpt.manifest.remaining() == ["e1", "e8", "e9"]
    ckpt.mark_experiment("e8")
    assert RunCheckpoint.load("r1", root=tmp_path).manifest.remaining() == ["e1", "e9"]
    ckpt.mark_experiment("e8")  # idempotent
    assert ckpt.manifest.completed == ["e8"]


def test_mark_status_persists(tmp_path):
    ckpt = start(tmp_path)
    ckpt.mark_status("interrupted")
    assert RunCheckpoint.load("r1", root=tmp_path).manifest.status == "interrupted"


def test_unit_journal_roundtrip(tmp_path):
    ckpt = start(tmp_path)
    assert ckpt.completed_units() == set()
    ckpt.record_unit("a" * 64, kind="rand-green", label="e1/x")
    ckpt.record_unit("b" * 64)
    assert ckpt.completed_units() == {"a" * 64, "b" * 64}
    row = json.loads(ckpt.journal_path.read_text().splitlines()[0])
    assert row == {"key": "a" * 64, "kind": "rand-green", "label": "e1/x"}


def test_journal_tolerates_torn_final_line(tmp_path):
    ckpt = start(tmp_path)
    ckpt.record_unit("a" * 64)
    with ckpt.journal_path.open("a") as fh:
        fh.write('{"key": "tru')  # crash mid-write
    assert ckpt.completed_units() == {"a" * 64}


def test_list_runs_ordered_and_filtered(tmp_path):
    assert list_runs(tmp_path) == []
    start(tmp_path, run_id="first")
    start(tmp_path, run_id="second")
    (tmp_path / "not-a-run").mkdir()  # no manifest: ignored
    assert list_runs(tmp_path) == ["first", "second"]


def test_default_runs_dir_env_override(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "rr"))
    assert default_runs_dir() == tmp_path / "rr"


def test_engine_journals_computed_units(tmp_path):
    ckpt = start(tmp_path)
    units = [
        WorkUnit(
            "rand-green",
            {"seq": cyclic(60, 5), "k": 8, "p": 2, "miss_cost": 4, "entropy": 5, "spawn_key": (i,)},
            label=f"ck/u{i}",
        )
        for i in range(3)
    ]
    ExecutionEngine(jobs=1, checkpoint=ckpt).run(units)
    assert ckpt.completed_units() == {u.key() for u in units}
