"""Execution engine: ordering, parallel/serial parity, cache path, scoping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exec import (
    ExecutionEngine,
    ResultCache,
    Telemetry,
    WorkUnit,
    current_engine,
    execute_unit,
    execution,
)
from repro.workloads import ParallelWorkload, cyclic


def run_units():
    wl = ParallelWorkload.from_local([cyclic(80, 5), cyclic(80, 7)])
    return [
        WorkUnit(
            "parallel-run",
            {"algorithm": name, "workload": wl, "cache_size": 16, "miss_cost": 8, "seed": seed},
            label=f"{name}/s{seed}",
        )
        for name in ("det-par", "rand-par")
        for seed in (0, 1, 2)
    ]


def green_units(n=4):
    seq = cyclic(120, 6)
    return [
        WorkUnit(
            "rand-green",
            {"seq": seq, "k": 8, "p": 2, "miss_cost": 4, "entropy": 11, "spawn_key": (i,)},
        )
        for i in range(n)
    ]


def test_serial_and_parallel_values_identical_and_ordered():
    units = run_units() + green_units()
    serial = ExecutionEngine(jobs=1).run(units)
    pooled = ExecutionEngine(jobs=2).run(units)
    assert len(serial) == len(units)
    assert serial == pooled  # same values, same order


def test_randomness_reconstructed_identically_in_workers():
    units = green_units()
    serial = ExecutionEngine(jobs=1).run(units)
    pooled = ExecutionEngine(jobs=3).run(units)
    np.testing.assert_array_equal(np.asarray(serial), np.asarray(pooled))


def test_cache_hit_returns_identical_value(tmp_path):
    units = run_units()
    telemetry = Telemetry()
    engine = ExecutionEngine(jobs=1, cache=ResultCache(tmp_path), telemetry=telemetry)
    cold = engine.run(units)
    cold_summary = telemetry.summary()
    assert cold_summary["cache_hits"] == 0
    assert cold_summary["cache_misses"] == len(units)

    mark = len(telemetry)
    warm = engine.run(units)
    warm_summary = telemetry.summary(since=mark)
    assert warm == cold
    assert warm_summary["cache_hits"] == len(units)
    assert warm_summary["cache_misses"] == 0
    assert warm_summary["hit_rate"] == 1.0


def test_no_cache_engine_writes_nothing(tmp_path):
    telemetry = Telemetry()
    ExecutionEngine(jobs=1, telemetry=telemetry).run(green_units(2))
    assert all(not rec.cached and rec.key == "" for rec in telemetry.records)


def test_sim_steps_survive_cache_hits(tmp_path):
    telemetry = Telemetry()
    engine = ExecutionEngine(cache=ResultCache(tmp_path), telemetry=telemetry)
    units = green_units(2)
    engine.run(units)
    mark = len(telemetry)
    engine.run(units)
    assert telemetry.summary()["sim_steps"] == telemetry.summary(since=mark)["sim_steps"] * 2


def test_execution_scopes_ambient_engine(tmp_path):
    base = current_engine()
    assert base.jobs == 1 and base.cache is None
    with execution(jobs=3, cache=True, cache_dir=tmp_path) as engine:
        assert current_engine() is engine
        assert engine.jobs == 3
        assert engine.cache is not None and engine.cache.root == tmp_path
        with execution(jobs=1) as inner:
            assert current_engine() is inner
        assert current_engine() is engine
    assert current_engine() is base


def test_jobs_must_be_positive():
    with pytest.raises(ValueError, match="jobs"):
        ExecutionEngine(jobs=0)


def test_unknown_unit_kind_rejected():
    with pytest.raises(KeyError, match="unknown work-unit kind"):
        execute_unit(WorkUnit("no-such-kind", {}))


def test_empty_batch():
    assert ExecutionEngine(jobs=4).run([]) == []


def test_pool_unavailable_falls_back_to_serial(monkeypatch):
    units = green_units(3)
    clean = ExecutionEngine(jobs=1).run(units)

    def broken_pool(self, max_workers):
        raise OSError("no sem_open on this platform")

    monkeypatch.setattr(ExecutionEngine, "_make_pool", broken_pool)
    engine = ExecutionEngine(jobs=4)
    with pytest.warns(RuntimeWarning, match="process pool unavailable"):
        values = engine.run(units)
    assert values == clean  # serial fallback, identical results


def test_execution_restores_stack_when_body_raises(tmp_path):
    base = current_engine()
    telemetry = Telemetry()
    out = tmp_path / "telemetry.jsonl"
    with pytest.raises(RuntimeError, match="boom"):
        with execution(jobs=2, telemetry=telemetry, telemetry_jsonl=out) as engine:
            engine.run(green_units(2))
            raise RuntimeError("boom")
    assert current_engine() is base  # stack popped despite the raise
    assert out.exists()  # partial telemetry still flushed
    assert len(out.read_text().splitlines()) == 2


def test_mid_batch_interrupt_preserves_completed_cells(tmp_path):
    """An interrupt mid-batch must not lose the cells that already finished."""
    from repro.exec import inject_faults

    seq = cyclic(120, 6)
    units = [
        WorkUnit(
            "rand-green",
            {"seq": seq, "k": 8, "p": 2, "miss_cost": 4, "entropy": 11, "spawn_key": (i,)},
            label=f"mid/u{i}",
        )
        for i in range(4)
    ]
    cache = ResultCache(tmp_path / "c")
    with inject_faults("interrupt:mid/u2:1"):
        with pytest.raises(KeyboardInterrupt):
            ExecutionEngine(jobs=1, cache=cache).run(units)
    # serial order: units 0 and 1 completed before the injected Ctrl-C
    assert cache.stats().entries == 2
    telemetry = Telemetry()
    resumed = ExecutionEngine(jobs=1, cache=cache, telemetry=telemetry).run(units)
    assert telemetry.summary()["cache_hits"] == 2
    assert resumed == ExecutionEngine(jobs=1).run(units)
