"""Result-cache keys for store-backed workloads.

The contract under test: a trace's identity in the result cache is its
*content*.  Different traces can never collide; the same content keys
identically whether it arrives as an in-memory workload, a store-backed
mmap workload, or a re-import of the same bytes — so warm cache entries
survive every representation change.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import run_experiment
from repro.exec import execution, stable_key, workload_fingerprint
from repro.parallel.schedulers import RunSpec
from repro.traces import TraceRegistry, write_store
from repro.workloads import ParallelWorkload

RNG = np.random.default_rng(47)


def workload(shift=0):
    return ParallelWorkload(
        sequences=[RNG.integers(0, 30, size=300) + 200 * i + shift for i in range(2)],
        name="key-test",
    )


def cell_key(wl, seed=0):
    return stable_key(
        "parallel-run",
        {"algorithm": "det-par", "cache_size": 16, "miss_cost": 4, "seed": seed, "workload": wl},
    )


class TestFingerprintUnification:
    def test_store_backed_fingerprint_equals_in_memory(self, tmp_path):
        wl = workload()
        store = write_store(tmp_path / "w.trc", wl)
        assert workload_fingerprint(store.workload()) == workload_fingerprint(wl)

    def test_different_traces_never_collide(self, tmp_path):
        a = write_store(tmp_path / "a.trc", workload(shift=0)).workload()
        b = write_store(tmp_path / "b.trc", workload(shift=1)).workload()
        assert workload_fingerprint(a) != workload_fingerprint(b)
        assert cell_key(a) != cell_key(b)

    def test_reimport_of_identical_content_keys_identically(self, tmp_path):
        wl = workload()
        first = write_store(tmp_path / "a.trc", wl, chunk_rows=64).workload()
        again = write_store(tmp_path / "b.trc", wl, chunk_rows=512).workload()
        assert cell_key(first) == cell_key(again) == cell_key(wl)

    def test_fingerprint_does_not_rehash_store_content(self, tmp_path):
        # the digest short-circuit must be used verbatim, not recomputed
        wl = workload()
        swl = write_store(tmp_path / "w.trc", wl).workload()
        swl.content_digest = "f" * 64
        assert workload_fingerprint(swl) == "f" * 64

    def test_spilled_workload_keys_identically_to_in_memory(self, tmp_path):
        # the zero-copy handoff spill must never split the result cache:
        # a worker receiving the spilled twin computes the same cell key
        from repro.traces.store import spill_workload

        wl = workload()
        spilled = spill_workload(wl, tmp_path)
        assert workload_fingerprint(spilled) == workload_fingerprint(wl)
        assert cell_key(spilled) == cell_key(wl)

    def test_handoff_prepared_unit_keys_identically(self, tmp_path):
        # end to end: HandoffManager.prepare replaces the workload, and the
        # prepared twin still lands on the original unit's cache key
        from repro.exec.handoff import HandoffManager
        from repro.exec.units import WorkUnit

        wl = ParallelWorkload(
            sequences=[RNG.integers(0, 30, size=40_000) + 200 * i for i in range(2)],
            name="key-test-big",
        )
        unit = WorkUnit(
            "parallel-run",
            {"algorithm": "det-par", "cache_size": 16, "miss_cost": 4, "seed": 0, "workload": wl},
        )
        with HandoffManager(spill_dir=tmp_path) as manager:
            task = manager.prepare_batch([unit], [0])[0]
            assert cell_key(task.params["workload"]) == cell_key(wl)


class TestCacheHitsAcrossRepresentations:
    def _run(self, wl, cache_dir):
        spec = RunSpec(algorithm="det-par", cache_size=16, miss_cost=4, xi=2)
        with execution(jobs=1, cache=True, cache_dir=cache_dir) as engine:
            rows = run_experiment(wl, [spec], seeds=(0, 1))
        return rows, engine

    def test_store_run_hits_cache_warmed_in_memory(self, tmp_path):
        wl = workload()
        cache_dir = tmp_path / "cache"
        rows_mem, _ = self._run(wl, cache_dir)
        entries_after_first = sum(1 for _ in cache_dir.glob("*/*.pkl"))
        assert entries_after_first > 0

        store = write_store(tmp_path / "w.trc", wl)
        rows_store, _ = self._run(store.workload(), cache_dir)
        entries_after_second = sum(1 for _ in cache_dir.glob("*/*.pkl"))
        # 100% hits: the store-backed run added no cache entries
        assert entries_after_second == entries_after_first
        a, b = rows_mem[0].as_dict(), rows_store[0].as_dict()
        assert a.pop("trace") == ""
        assert b.pop("trace") == store.content_digest
        assert a == b

    def test_registry_reference_hits_same_entries(self, tmp_path, monkeypatch):
        wl = workload()
        cache_dir = tmp_path / "cache"
        registry = TraceRegistry(tmp_path / "registry")
        registry.add_workload(wl, name="by-name")
        monkeypatch.setenv("REPRO_TRACES_DIR", str(tmp_path / "registry"))

        self._run(wl, cache_dir)
        before = sum(1 for _ in cache_dir.glob("*/*.pkl"))
        rows, _ = self._run("by-name", cache_dir)
        assert sum(1 for _ in cache_dir.glob("*/*.pkl")) == before
        assert rows[0].trace == registry.resolve("by-name")

    def test_different_trace_misses(self, tmp_path):
        cache_dir = tmp_path / "cache"
        self._run(workload(shift=0), cache_dir)
        before = sum(1 for _ in cache_dir.glob("*/*.pkl"))
        self._run(workload(shift=5), cache_dir)
        assert sum(1 for _ in cache_dir.glob("*/*.pkl")) > before
