"""ExecutionPolicy: validation, deterministic backoff, timeouts, retry loop."""

from __future__ import annotations

import time

import pytest

from repro.exec import (
    ExecutionPolicy,
    FailedCell,
    UnitExecutionError,
    UnitTimeoutError,
    WorkUnit,
    inject_faults,
    run_unit_with_policy,
)
from repro.exec.policy import call_with_timeout
from repro.workloads import cyclic


def green_unit(tag: int = 0) -> WorkUnit:
    return WorkUnit(
        "rand-green",
        {"seq": cyclic(60, 5), "k": 8, "p": 2, "miss_cost": 4, "entropy": 3, "spawn_key": (tag,)},
        label=f"policy/u{tag}",
    )


# --------------------------------------------------------------------- #
# validation
# --------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "kwargs",
    [
        {"timeout_s": 0},
        {"timeout_s": -1.0},
        {"retries": -1},
        {"backoff_s": -0.1},
        {"backoff_multiplier": 0.5},
        {"jitter": -0.1},
        {"jitter": 1.5},
    ],
)
def test_invalid_policy_rejected(kwargs):
    with pytest.raises(ValueError):
        ExecutionPolicy(**kwargs)


def test_max_attempts():
    assert ExecutionPolicy().max_attempts == 1
    assert ExecutionPolicy(retries=3).max_attempts == 4


# --------------------------------------------------------------------- #
# backoff
# --------------------------------------------------------------------- #
def test_backoff_deterministic_and_exponential():
    p = ExecutionPolicy(retries=3, backoff_s=0.1, backoff_multiplier=2.0, jitter=0.2)
    first = [p.backoff_delay("some-key", a) for a in (1, 2, 3)]
    again = [p.backoff_delay("some-key", a) for a in (1, 2, 3)]
    assert first == again  # same key + attempt -> same jittered delay
    # jitter stretches by at most 20%, so the exponential shape survives
    assert 0.1 <= first[0] <= 0.12
    assert 0.2 <= first[1] <= 0.24
    assert 0.4 <= first[2] <= 0.48


def test_backoff_jitter_varies_by_key():
    p = ExecutionPolicy(backoff_s=1.0, jitter=1.0)
    delays = {p.backoff_delay(f"key{i}", 1) for i in range(8)}
    assert len(delays) > 1  # different units de-synchronize


def test_zero_jitter_is_exact():
    p = ExecutionPolicy(backoff_s=0.25, backoff_multiplier=3.0, jitter=0.0)
    assert p.backoff_delay("k", 1) == 0.25
    assert p.backoff_delay("k", 2) == 0.75


# --------------------------------------------------------------------- #
# call_with_timeout
# --------------------------------------------------------------------- #
def test_call_with_timeout_passthrough():
    assert call_with_timeout(lambda a, b: a + b, (2, 3), None) == 5
    assert call_with_timeout(lambda: "ok", (), 5.0) == "ok"


def test_call_with_timeout_raises_on_slow_fn():
    t0 = time.perf_counter()
    with pytest.raises(UnitTimeoutError):
        call_with_timeout(time.sleep, (30,), 0.1)
    assert time.perf_counter() - t0 < 5  # abandoned, not joined to completion


def test_call_with_timeout_propagates_errors():
    def boom():
        raise ZeroDivisionError("inner")

    with pytest.raises(ZeroDivisionError, match="inner"):
        call_with_timeout(boom, (), 5.0)


# --------------------------------------------------------------------- #
# run_unit_with_policy
# --------------------------------------------------------------------- #
def test_clean_unit_runs_once():
    outcome, attempts = run_unit_with_policy(green_unit(), ExecutionPolicy(retries=2))
    assert attempts == 1
    assert not isinstance(outcome, FailedCell)
    assert outcome.value is not None


def test_flaky_unit_retries_then_succeeds():
    clean, _ = run_unit_with_policy(green_unit(1), ExecutionPolicy())
    with inject_faults("flaky:policy/u1:2"):
        outcome, attempts = run_unit_with_policy(
            green_unit(1), ExecutionPolicy(retries=2, backoff_s=0.01)
        )
    assert attempts == 3  # two injected failures, then success
    assert outcome.value == clean.value


def test_fail_fast_raises_unit_execution_error():
    with inject_faults("crash:policy/u2:0"):  # times<=0: every attempt fails
        with pytest.raises(UnitExecutionError, match="failed after 2 attempt"):
            run_unit_with_policy(green_unit(2), ExecutionPolicy(retries=1, backoff_s=0.01))


def test_keep_going_yields_failed_cell():
    policy = ExecutionPolicy(retries=1, backoff_s=0.01, keep_going=True)
    with inject_faults("crash:policy/u3:0"):
        outcome, attempts = run_unit_with_policy(green_unit(3), policy, key="deadbeef")
    assert isinstance(outcome, FailedCell)
    assert attempts == 2
    assert outcome.attempts == 2
    assert outcome.kind == "rand-green"
    assert outcome.key == "deadbeef"
    assert outcome.error_type == "InjectedFault"
    assert "injected" in outcome.error


def test_keyboard_interrupt_propagates_not_retried():
    with inject_faults("interrupt:policy/u4:1"):
        with pytest.raises(KeyboardInterrupt):
            run_unit_with_policy(
                green_unit(4), ExecutionPolicy(retries=5, backoff_s=0.01, keep_going=True)
            )


def test_timeout_counts_as_attempt():
    policy = ExecutionPolicy(timeout_s=0.1, retries=0, keep_going=True)
    with inject_faults("hang:policy/u5:1:30"):
        outcome, attempts = run_unit_with_policy(green_unit(5), policy)
    assert isinstance(outcome, FailedCell)
    assert outcome.error_type == "UnitTimeoutError"
    assert attempts == 1
