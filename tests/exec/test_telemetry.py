"""Telemetry collector: aggregation, rendering, and JSONL export."""

from __future__ import annotations

import json

from repro.exec import CellRecord, Telemetry


def rec(cached: bool, steps: int = 100, dur: float = 0.5) -> CellRecord:
    return CellRecord(
        kind="parallel-run",
        label="det-par/s0",
        key="ab" * 32,
        cached=cached,
        duration_s=dur,
        sim_steps=steps,
    )


def test_summary_counts():
    t = Telemetry()
    for cached in (False, False, True):
        t.record(rec(cached))
    s = t.summary()
    assert s["cells"] == 3
    assert s["cache_hits"] == 1
    assert s["cache_misses"] == 2
    assert s["hit_rate"] == 1 / 3
    assert s["sim_steps"] == 300
    assert s["compute_s"] == 1.5


def test_summary_since_window():
    t = Telemetry()
    t.record(rec(False))
    mark = len(t)
    t.record(rec(True))
    t.record(rec(True))
    s = t.summary(since=mark)
    assert s["cells"] == 2 and s["cache_hits"] == 2 and s["hit_rate"] == 1.0


def test_empty_summary_has_zero_hit_rate():
    s = Telemetry().summary()
    assert s["cells"] == 0 and s["hit_rate"] == 0.0


def test_render_one_line():
    t = Telemetry()
    t.record(rec(True))
    line = t.render()
    assert "\n" not in line
    assert "cells=1" in line and "cache_hits=1" in line and "hit_rate=100%" in line


def test_clear():
    t = Telemetry()
    t.record(rec(False))
    t.clear()
    assert len(t) == 0


def test_jsonl_roundtrip(tmp_path):
    t = Telemetry()
    t.record(rec(False))
    t.record(rec(True, steps=7))
    out = tmp_path / "sub" / "telemetry.jsonl"
    t.write_jsonl(out)
    rows = [json.loads(line) for line in out.read_text().splitlines()]
    assert len(rows) == 2
    assert rows[0]["cached"] is False and rows[1]["cached"] is True
    assert rows[1]["sim_steps"] == 7
    assert set(rows[0]) == {
        "kind",
        "label",
        "key",
        "cached",
        "duration_s",
        "sim_steps",
        "failed",
        "attempts",
        "error",
    }


def test_jsonl_since_and_append(tmp_path):
    t = Telemetry()
    t.record(rec(False))
    out = tmp_path / "telemetry.jsonl"
    t.write_jsonl(out)
    mark = len(t)
    t.record(rec(True))
    t.write_jsonl(out, since=mark)
    assert len(out.read_text().splitlines()) == 2
    t.write_jsonl(out, append=False)
    assert len(out.read_text().splitlines()) == 2  # rewritten from scratch
