"""Scoring: adversary-eval units, ratio semantics, the hand-built bar."""

from __future__ import annotations

import pytest

from repro.exec.engine import execution
from repro.exec.units import execute_unit
from repro.search.scorers import (
    SEARCH_ALGORITHMS,
    candidate_unit,
    evaluate_adversary_params,
    hand_built_baseline,
    hand_built_grid,
)
from repro.workloads.families import get_family


def test_candidate_unit_is_cache_keyable_and_stable():
    cfg = get_family("adversarial").default_config("quick")
    a = candidate_unit("adversarial", cfg, "det-par", seeds=(0, 1), xi=2)
    b = candidate_unit("adversarial", dict(cfg), "det-par", seeds=(0, 1), xi=2)
    assert a.key() == b.key()
    assert a.kind == "adversary-eval"
    assert a.label == "hunt/det-par/adversarial"


def test_candidate_unit_rejects_unknown_algorithm_and_family():
    cfg = get_family("adversarial").default_config("quick")
    with pytest.raises(ValueError, match="unknown search algorithm"):
        candidate_unit("adversarial", cfg, "global-lru")
    with pytest.raises(KeyError, match="unknown workload family"):
        candidate_unit("nope", cfg, "det-par")


@pytest.mark.parametrize("algorithm", SEARCH_ALGORITHMS)
def test_evaluate_returns_scalars_and_sane_ratio(algorithm):
    cfg = {"ell": 2, "alpha": 0.25, "suffix_mult": 1}
    unit = candidate_unit("adversarial", cfg, algorithm, seeds=(0, 1), xi=2)
    outcome = execute_unit(unit)
    value = outcome.value
    assert value["algorithm"] == algorithm
    assert value["ratio"] == pytest.approx(value["objective"] / value["offline"])
    # online algorithms cannot beat their own certified offline baseline
    assert value["ratio"] >= 0.99
    assert outcome.sim_steps == value["requests"] * len(value["per_seed"])


def test_det_par_collapses_replication_seeds():
    cfg = {"ell": 2, "alpha": 0.25, "suffix_mult": 1}
    many = evaluate_adversary_params(
        candidate_unit("adversarial", cfg, "det-par", seeds=(0, 1, 2)).params
    )
    one = evaluate_adversary_params(
        candidate_unit("adversarial", cfg, "det-par", seeds=(0,)).params
    )
    assert many["per_seed"] == one["per_seed"]
    assert many["ratio"] == one["ratio"]


def test_evaluation_is_deterministic():
    cfg = get_family("polluted-cycles").default_config("quick")
    unit = candidate_unit("polluted-cycles", cfg, "rand-par", workload_seed=4, seeds=(0, 1))
    a = evaluate_adversary_params(unit.params)
    b = evaluate_adversary_params(unit.params)
    assert a == b


def test_hand_built_grid_points_are_searchable_configs():
    fam = get_family("adversarial")
    for scale in ("quick", "full"):
        for cfg in hand_built_grid(scale):
            clipped = fam.clip_config(cfg, scale)
            assert clipped == cfg  # the baseline is reachable by the search


def test_hand_built_baseline_measured_through_engine(tmp_path):
    with execution(jobs=1, cache=True, cache_dir=tmp_path / "cache"):
        base = hand_built_baseline("det-par", "quick", seeds=(0,), xi=2)
    assert base["ratio"] > 1.0
    assert base["config"] in list(hand_built_grid("quick"))
