"""Workload families: bounded spaces, deterministic builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.traces.store import content_digest_of
from repro.workloads.families import (
    FAMILY_REGISTRY,
    build_candidate,
    family_names,
    get_family,
)

ALL_FAMILIES = family_names()


class TestRegistry:
    def test_known_families(self):
        assert "adversarial" in ALL_FAMILIES
        assert len(ALL_FAMILIES) >= 5

    def test_get_family_unknown_raises_with_known_names(self):
        with pytest.raises(KeyError, match="adversarial"):
            get_family("nope")


@pytest.mark.parametrize("family", ALL_FAMILIES)
class TestBuilders:
    def test_default_config_builds(self, family):
        fam = get_family(family)
        built = fam.build(fam.default_config("quick"), workload_seed=0)
        assert built.workload.p >= 1
        assert built.workload.total_requests > 0
        assert built.k >= built.green_p >= 1
        assert built.miss_cost >= 2
        # green lattice constraint: both powers of two
        assert built.k & (built.k - 1) == 0
        assert built.green_p & (built.green_p - 1) == 0

    def test_build_is_deterministic(self, family):
        fam = get_family(family)
        cfg = fam.default_config("quick")
        a = build_candidate(family, cfg, workload_seed=3)
        b = build_candidate(family, cfg, workload_seed=3)
        assert content_digest_of(a.workload.sequences) == content_digest_of(b.workload.sequences)
        assert (a.k, a.miss_cost, a.green_p) == (b.k, b.miss_cost, b.green_p)

    def test_sampled_configs_build_and_respect_bounds(self, family):
        fam = get_family(family)
        rng = np.random.default_rng(11)
        for _ in range(3):
            cfg = {p.name: p.sample(rng, "quick") for p in fam.params}
            for p in fam.params:
                lo, hi = p.bounds("quick")
                assert lo <= cfg[p.name] <= hi
            built = fam.build(cfg, workload_seed=1)
            assert built.workload.total_requests > 0

    def test_clip_config_rejects_unknown_and_missing(self, family):
        fam = get_family(family)
        cfg = fam.default_config("quick")
        with pytest.raises(KeyError, match="unknown"):
            fam.clip_config({**cfg, "bogus": 1}, "quick")
        cfg.pop(fam.params[0].name)
        with pytest.raises(KeyError, match="missing"):
            fam.clip_config(cfg, "quick")


class TestParallelSchedulesFamily:
    """Expected-shape properties of the Albers-Hellwig makespan family."""

    FAM = "parallel-schedules"

    def _cfg(self, **over):
        fam = get_family(self.FAM)
        cfg = fam.default_config("quick")
        cfg.update(over)
        return fam.clip_config(cfg, "quick")

    def test_registered_with_geometry_params(self):
        fam = get_family(self.FAM)
        names = {p.name for p in fam.params}
        assert {"p_exp", "k_exp", "s_factor", "length"} <= names
        assert {"small_frac", "big_frac", "tail_frac", "imbalance", "jobs"} <= names

    def test_quick_bounds_subset_of_full(self):
        fam = get_family(self.FAM)
        for p in fam.params:
            qlo, qhi = p.bounds("quick")
            flo, fhi = p.bounds("full")
            assert flo <= qlo <= qhi <= fhi, p.name

    def test_tail_imbalance_orders_lengths(self):
        built = build_candidate(self.FAM, self._cfg(imbalance=4.0), workload_seed=0)
        lengths = [len(sq) for sq in built.workload.sequences]
        # geometric tail weights: later processors carry strictly more work
        assert lengths[-1] > lengths[0]

    def test_tail_working_set_is_large(self):
        cfg = self._cfg(big_frac=1.5, small_frac=0.2, tail_frac=0.5)
        built = build_candidate(self.FAM, cfg, workload_seed=0)
        k = built.k
        small = max(2, int(round(cfg["small_frac"] * k / built.workload.p)))
        big = max(small + 1, int(round(cfg["big_frac"] * k)))
        seq = built.workload.sequences[0]
        tail = seq[-min(len(seq), big):]
        head = seq[: max(1, len(seq) // 4)]
        # the tail job cycles over a working set far wider than any small job
        assert len(np.unique(tail)) > len(np.unique(head))

    def test_mutate_and_neighbors_stay_in_bounds(self):
        fam = get_family(self.FAM)
        rng = np.random.default_rng(5)
        cfg = fam.default_config("quick")
        for p in fam.params:
            lo, hi = p.bounds("quick")
            for _ in range(5):
                assert lo <= p.mutate(cfg[p.name], rng, "quick") <= hi
            for nb in p.neighbors(cfg[p.name], "quick"):
                assert lo <= nb <= hi
                assert nb != cfg[p.name]

    def test_varies_with_workload_seed(self):
        fam = get_family(self.FAM)
        cfg = fam.default_config("quick")
        a = fam.build(cfg, workload_seed=0)
        b = fam.build(cfg, workload_seed=1)
        assert content_digest_of(a.workload.sequences) != content_digest_of(b.workload.sequences)


class TestSeedSensitivity:
    def test_stochastic_families_vary_with_workload_seed(self):
        fam = FAMILY_REGISTRY["biased-random"]
        cfg = fam.default_config("quick")
        a = fam.build(cfg, workload_seed=0)
        b = fam.build(cfg, workload_seed=1)
        assert content_digest_of(a.workload.sequences) != content_digest_of(b.workload.sequences)

    def test_adversarial_ignores_workload_seed(self):
        fam = FAMILY_REGISTRY["adversarial"]
        cfg = fam.default_config("quick")
        a = fam.build(cfg, workload_seed=0)
        b = fam.build(cfg, workload_seed=99)
        assert content_digest_of(a.workload.sequences) == content_digest_of(b.workload.sequences)

    def test_quick_bounds_tighter_than_full(self):
        ell = FAMILY_REGISTRY["adversarial"].spec("ell")
        assert ell.bounds("quick")[1] <= ell.bounds("full")[1]
