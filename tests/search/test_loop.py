"""The hunt loop: determinism, interrupt/resume, corpus commit + replay."""

from __future__ import annotations

import json

import pytest

from repro.exec.engine import execution
from repro.exec.faults import inject_faults
from repro.obs import metrics as obs_metrics
from repro.search import HuntConfig, AdversarySearch, corpus_entries, replay_corpus
from repro.search.loop import SearchState
from repro.traces.registry import TraceRegistry

CFG = dict(seed=7, rounds=2, scale="quick", eval_seeds=2)


def run_hunt(tmp_path, tag, config=None, **kwargs):
    root = tmp_path / tag
    registry = TraceRegistry(root / "traces")
    cfg = config or HuntConfig(**CFG)
    with execution(jobs=1, cache=True, cache_dir=root / "cache"):
        search = AdversarySearch.start(cfg, runs_root=root / "runs", registry=registry, **kwargs)
        state = search.run()
    return search, state, registry


def state_json(state: SearchState) -> str:
    return json.dumps(state.to_dict(), sort_keys=True)


def corpus_digests(registry: TraceRegistry):
    return [(r["name"], r["digest"]) for r in registry.ls(prefix="hard/")]


class TestDeterminism:
    def test_same_seed_identical_records_and_corpus(self, tmp_path):
        _, s1, r1 = run_hunt(tmp_path, "a")
        _, s2, r2 = run_hunt(tmp_path, "b")
        assert state_json(s1) == state_json(s2)
        assert corpus_digests(r1) == corpus_digests(r2)

    def test_different_seed_diverges(self, tmp_path):
        _, s1, _ = run_hunt(tmp_path, "a")
        _, s2, _ = run_hunt(tmp_path, "c", config=HuntConfig(**{**CFG, "seed": 8}))
        assert state_json(s1) != state_json(s2)


class TestInterruptResume:
    def test_sigint_then_resume_matches_uninterrupted(self, tmp_path):
        _, ref_state, ref_reg = run_hunt(tmp_path, "ref")
        root = tmp_path / "int"
        registry = TraceRegistry(root / "traces")
        cfg = HuntConfig(**CFG)
        with pytest.raises(KeyboardInterrupt):
            with execution(jobs=1, cache=True, cache_dir=root / "cache"):
                search = AdversarySearch.start(cfg, runs_root=root / "runs", registry=registry)
                run_id = search.checkpoint.manifest.run_id
                with inject_faults("interrupt:adversary-eval:9"):
                    search.run()
        search.checkpoint.mark_status("interrupted")
        assert search.checkpoint.manifest.status == "interrupted"
        with execution(jobs=1, cache=True, cache_dir=root / "cache"):
            resumed = AdversarySearch.resume(run_id, runs_root=root / "runs", registry=registry)
            state = resumed.run()
        assert state_json(state) == state_json(ref_state)
        assert corpus_digests(registry) == corpus_digests(ref_reg)
        assert resumed.checkpoint.manifest.status == "complete"

    def test_resume_of_non_hunt_run_rejected(self, tmp_path):
        from repro.exec.checkpoint import RunCheckpoint

        RunCheckpoint.start(["e1"], {"experiment": "e1"}, root=tmp_path / "runs", run_id="plain")
        with pytest.raises(ValueError, match="not a hunt"):
            AdversarySearch.resume("plain", runs_root=tmp_path / "runs")


class TestCorpus:
    def test_commits_beat_hand_built_baseline(self, tmp_path):
        _, state, registry = run_hunt(tmp_path, "a")
        # acceptance: >= 3 det-par hard instances above the hand-built bar
        det = [c for c in state.committed if c["algorithm"] == "det-par"]
        assert len(det) >= 3
        bar = state.baseline["det-par"]["ratio"]
        assert all(c["ratio"] > bar for c in det)
        entries = corpus_entries(registry, "det-par")
        assert entries and all(e["name"].startswith("hard/det-par/") for e in entries)

    def test_corpus_replays_byte_identically(self, tmp_path):
        _, _, registry = run_hunt(tmp_path, "a")
        # fresh cold cache: the replay must re-measure, not just re-read
        with execution(jobs=1, cache=False):
            report = replay_corpus(registry)
        assert report
        assert all(r["ok"] for r in report)
        assert all(r["measured"] == r["recorded"] for r in report)

    def test_replay_detects_ratio_drift(self, tmp_path):
        _, _, registry = run_hunt(tmp_path, "a")
        # corrupt one recorded ratio in the catalog: replay must flag it
        catalog = json.loads(registry.catalog_path.read_text())
        name, digest = next(iter(sorted(catalog["names"].items())))
        algo = name.split("/")[1]
        catalog["traces"][digest]["meta"]["hard_instance"][algo]["ratio"] = 1.0
        registry.catalog_path.write_text(json.dumps(catalog))
        with execution(jobs=1, cache=False):
            report = replay_corpus(registry)
        flagged = [r for r in report if not r["ratio_ok"]]
        assert flagged  # the tampered entry fails the gate

    def test_state_file_round_trips(self, tmp_path):
        search, state, _ = run_hunt(tmp_path, "a")
        raw = json.loads(search.state_path.read_text())
        assert state_json(SearchState.from_dict(raw)) == state_json(state)


class TestObservability:
    def test_search_metrics_emitted(self, tmp_path):
        registry_sink = obs_metrics.MetricsRegistry(enabled=True)
        with obs_metrics.collecting(registry_sink):
            run_hunt(tmp_path, "a")
        snap = registry_sink.snapshot()
        counters = snap.get("counters", {})
        assert counters.get("search.rounds") == CFG["rounds"]
        assert any(k.startswith("search.candidates") for k in counters)
        assert any(k.startswith("search.commits") for k in counters)
        gauges = snap.get("gauges", {})
        assert any(k.startswith("search.best_ratio") for k in gauges)
