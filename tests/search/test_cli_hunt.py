"""CLI surface of the adversary search: hunt, hunt resume, hunt corpus."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.exec.faults import inject_faults

HUNT = [
    "hunt",
    "--rounds", "2",
    "--scale", "quick",
    "--seed", "11",
    "--eval-seeds", "1",
    "--families", "adversarial,polluted-cycles",
    "--algorithms", "det-par",
]


def paths(tmp_path):
    return [
        "--registry", str(tmp_path / "traces"),
        "--runs-dir", str(tmp_path / "runs"),
        "--cache-dir", str(tmp_path / "cache"),
    ]


def test_hunt_runs_and_reports(tmp_path, capsys):
    rc = main(HUNT + paths(tmp_path) + ["--run-id", "hunt-t1", "--metrics", str(tmp_path / "m.json")])
    assert rc == 0
    out = capsys.readouterr().out
    assert "round 1/2" in out and "round 2/2" in out
    assert "hand-built baseline" in out and "hunt hunt-t1 complete" in out
    snap = json.loads((tmp_path / "m.json").read_text())
    assert snap["counters"]["search.rounds"] == 2


def test_hunt_corpus_list_and_replay(tmp_path, capsys):
    assert main(HUNT + paths(tmp_path)) == 0
    capsys.readouterr()
    assert main(["hunt", "corpus"] + paths(tmp_path)) == 0
    listing = capsys.readouterr().out
    assert "hard/det-par/" in listing and "ratio=" in listing
    assert main(["hunt", "corpus", "--replay", "--no-cache"] + paths(tmp_path)) == 0
    replay = capsys.readouterr().out
    assert "replay byte-identically" in replay and "DRIFT" not in replay


def test_hunt_corpus_empty_registry(tmp_path, capsys):
    assert main(["hunt", "corpus"] + paths(tmp_path)) == 0
    assert "no hard instances" in capsys.readouterr().out


def test_hunt_interrupt_exit_code_and_resume(tmp_path, capsys):
    with inject_faults("interrupt:adversary-eval:5"):
        rc = main(HUNT + paths(tmp_path) + ["--run-id", "hunt-int"])
    assert rc == 130
    err = capsys.readouterr().err
    assert "resume with: repro hunt resume hunt-int" in err
    rc = main(["hunt", "resume", "hunt-int"] + paths(tmp_path))
    assert rc == 0
    out = capsys.readouterr().out
    assert "complete" in out


def test_hunt_resume_unknown_run(tmp_path, capsys):
    assert main(["hunt", "resume", "nope"] + paths(tmp_path)) == 2
    assert "repro hunt resume:" in capsys.readouterr().err


def test_hunt_rejects_bad_flags(tmp_path, capsys):
    assert main(["hunt", "--rounds", "0"] + paths(tmp_path)) == 2
    assert main(["hunt", "--algorithms", "global-lru"] + paths(tmp_path)) == 2
    assert main(["hunt", "--families", "bogus"] + paths(tmp_path)) == 2


def test_hunt_same_seed_same_corpus_across_processes(tmp_path, capsys):
    a = tmp_path / "a"
    b = tmp_path / "b"
    assert main(HUNT + paths(a)) == 0
    assert main(HUNT + paths(b)) == 0
    capsys.readouterr()
    assert main(["hunt", "corpus", "--registry", str(a / "traces")]) == 0
    la = capsys.readouterr().out
    assert main(["hunt", "corpus", "--registry", str(b / "traces")]) == 0
    lb = capsys.readouterr().out
    assert la == lb
