"""Proposal operators: in-bounds, non-trivial, deterministic where claimed."""

from __future__ import annotations

import numpy as np
import pytest

from repro.search.proposers import (
    canonical_config,
    coordinate_probes,
    crossover,
    mutate,
    random_config,
)
from repro.workloads.families import family_names, get_family


@pytest.mark.parametrize("family", family_names())
def test_mutate_stays_in_bounds_and_moves(family):
    fam = get_family(family)
    cfg = fam.default_config("quick")
    rng = np.random.default_rng(5)
    for _ in range(10):
        mutant = mutate(family, cfg, rng, "quick")
        assert set(mutant) == {p.name for p in fam.params}
        for p in fam.params:
            lo, hi = p.bounds("quick")
            assert lo <= mutant[p.name] <= hi
        assert canonical_config(mutant) != canonical_config(cfg)


def test_crossover_takes_fields_from_parents():
    family = "biased-random"
    fam = get_family(family)
    rng = np.random.default_rng(0)
    a = random_config(family, rng, "quick")
    b = random_config(family, rng, "quick")
    child = crossover(family, a, b, np.random.default_rng(1), "quick")
    for p in fam.params:
        assert child[p.name] in (a[p.name], b[p.name])


def test_coordinate_probes_deterministic_single_axis():
    family = "adversarial"
    fam = get_family(family)
    cfg = fam.default_config("quick")
    probes1 = coordinate_probes(family, cfg, "quick")
    probes2 = coordinate_probes(family, cfg, "quick")
    assert probes1 == probes2  # no hidden randomness
    assert probes1
    for axis, probe in probes1:
        diffs = [name for name in probe if probe[name] != cfg[name]]
        assert diffs == [axis]


def test_random_config_same_rng_state_same_draw():
    a = random_config("multiscale", np.random.default_rng(42), "quick")
    b = random_config("multiscale", np.random.default_rng(42), "quick")
    assert canonical_config(a) == canonical_config(b)
