"""Tests for growth-model fitting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import best_model, fit_growth, normalized_constants
from repro.analysis.fitting import MODELS, _feature


class TestFeatures:
    def test_models_enumerated(self):
        assert set(MODELS) == {"const", "log", "log2", "log_over_loglog"}

    def test_feature_values(self):
        p = np.array([4.0, 16.0])
        assert np.allclose(_feature("log", p), [2, 4])
        assert np.allclose(_feature("log2", p), [4, 16])
        assert np.allclose(_feature("const", p), [0, 0])

    def test_log_over_loglog_guard(self):
        # p=2 -> log2 p = 1 -> inner log clamped, no division by zero
        vals = _feature("log_over_loglog", np.array([2.0, 4.0, 256.0]))
        assert np.all(np.isfinite(vals))

    def test_unknown_model(self):
        with pytest.raises(ValueError):
            _feature("cubic", np.array([2.0]))


class TestFitGrowth:
    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_growth([4], [1.0], "log")

    def test_exact_log_recovery(self):
        ps = [2, 4, 8, 16, 32, 64]
        ys = [1.5 + 0.7 * np.log2(p) for p in ps]
        fit = fit_growth(ps, ys, "log")
        assert fit.intercept == pytest.approx(1.5, abs=1e-9)
        assert fit.slope == pytest.approx(0.7, abs=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_exact_const_recovery(self):
        fit = fit_growth([2, 4, 8], [3.0, 3.0, 3.0], "const")
        assert fit.intercept == pytest.approx(3.0)
        assert fit.rss == pytest.approx(0.0)

    def test_predict(self):
        fit = fit_growth([2, 4, 8, 16], [1 + np.log2(p) for p in (2, 4, 8, 16)], "log")
        assert fit.predict([32])[0] == pytest.approx(6.0, abs=1e-8)


class TestBestModel:
    def test_picks_log_for_log_data(self):
        ps = [2, 4, 8, 16, 32, 64, 128]
        ys = [2 + 1.3 * np.log2(p) for p in ps]
        assert best_model(ps, ys).model == "log"

    def test_picks_log2_for_log2_data(self):
        ps = [2, 4, 8, 16, 32, 64, 128]
        ys = [1 + 0.4 * np.log2(p) ** 2 for p in ps]
        assert best_model(ps, ys).model == "log2"

    def test_picks_const_for_flat_data(self):
        ps = [2, 4, 8, 16, 32]
        ys = [5.0, 5.0, 5.0, 5.0, 5.0]
        assert best_model(ps, ys).model == "const"

    def test_parsimony_prefers_simpler(self):
        """Nearly-flat data with a whisper of noise should stay 'const'."""
        rng = np.random.default_rng(0)
        ps = [2, 4, 8, 16, 32, 64]
        ys = 3.0 + rng.normal(0, 0.01, size=len(ps))
        assert best_model(ps, list(ys)).model == "const"


class TestNormalizedConstants:
    def test_flat_for_matching_model(self):
        ps = [4, 16, 64]
        ys = [2 * np.log2(p) for p in ps]
        norm = normalized_constants(ps, ys, "log")
        assert np.allclose(norm, 2.0)

    def test_guards_zero_feature(self):
        norm = normalized_constants([1, 2], [5.0, 5.0], "log")  # log2(1)=0 guarded
        assert np.all(np.isfinite(norm))
