"""Tests for table rendering and CSV export."""

from __future__ import annotations

import csv

from repro.analysis import render_table, write_csv, write_report


ROWS = [
    {"algorithm": "det-par", "p": 8, "ratio": 1.234567},
    {"algorithm": "global-lru", "p": 8, "ratio": None},
]


class TestRenderTable:
    def test_empty(self):
        assert "(no rows)" in render_table([])
        assert "## T" in render_table([], title="T")

    def test_columns_and_alignment(self):
        text = render_table(ROWS)
        lines = text.strip().splitlines()
        assert lines[0].startswith("| algorithm")
        assert all(len(l) == len(lines[0]) for l in lines)  # aligned
        assert "1.235" in text  # floats formatted to 3 decimals
        assert "-" in lines[-1]  # None rendered as '-'

    def test_title(self):
        text = render_table(ROWS, title="My Table")
        assert text.startswith("## My Table")

    def test_explicit_column_subset(self):
        text = render_table(ROWS, columns=["p", "algorithm"])
        header = text.splitlines()[0]
        assert header.index("p") < header.index("algorithm")
        assert "ratio" not in header

    def test_markdown_parseable(self):
        text = render_table(ROWS)
        lines = text.strip().splitlines()
        assert lines[1].replace("|", "").replace("-", "").strip() == ""


class TestWriteCsv:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "out" / "rows.csv"
        write_csv(ROWS, path)
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert rows[0]["algorithm"] == "det-par"
        assert rows[0]["p"] == "8"
        assert rows[1]["ratio"] == ""

    def test_empty(self, tmp_path):
        path = tmp_path / "empty.csv"
        write_csv([], path)
        assert path.read_text() == ""


class TestWriteReport:
    def test_persists_and_echoes(self, tmp_path, capsys):
        path = tmp_path / "deep" / "report.md"
        write_report("hello table", path, echo=True)
        assert path.read_text() == "hello table"
        assert "hello table" in capsys.readouterr().out

    def test_silent(self, tmp_path, capsys):
        path = tmp_path / "r.md"
        write_report("quiet", path, echo=False)
        assert capsys.readouterr().out == ""
