"""Tests for the experiment runner and p-sweeps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import run_experiment, series_of, sweep_p
from repro.analysis.sweep import default_workload_factory
from repro.workloads import ParallelWorkload, cyclic


def small_workload(p=4):
    return ParallelWorkload.from_local([cyclic(120, 4 + i) for i in range(p)])


class TestRunExperiment:
    def test_basic_rows(self):
        rows = run_experiment(
            small_workload(),
            ["det-par", "equal-partition"],
            k=16,
            miss_cost=8,
            xi=2,
            seeds=(0,),
            include_impact_lb=False,
        )
        assert [r.algorithm for r in rows] == ["det-par", "equal-partition"]
        for r in rows:
            assert r.p == 4
            assert r.makespan > 0
            assert r.makespan_ratio is not None and r.makespan_ratio > 0

    def test_xi_validation(self):
        with pytest.raises(ValueError):
            run_experiment(small_workload(), ["det-par"], k=16, miss_cost=8, xi=0)

    def test_deterministic_algorithm_deduped(self):
        rows = run_experiment(
            small_workload(),
            ["det-par"],
            k=16,
            miss_cost=8,
            seeds=(0, 1, 2, 3),
            include_impact_lb=False,
        )
        assert rows[0].seeds == 2  # detected identical makespans, stopped

    def test_randomized_algorithm_replicated(self):
        rows = run_experiment(
            small_workload(),
            ["rand-par"],
            k=16,
            miss_cost=8,
            seeds=(0, 1, 2),
            include_impact_lb=False,
        )
        assert rows[0].seeds >= 2
        assert rows[0].max_makespan_ratio >= rows[0].makespan_ratio

    def test_precomputed_lower_bound_used(self):
        from repro.parallel import makespan_lower_bound

        wl = small_workload()
        lb = makespan_lower_bound(wl, 16, 8, include_impact=False)
        rows = run_experiment(wl, ["det-par"], k=16, miss_cost=8, lower_bound=lb)
        assert rows[0].makespan_ratio == pytest.approx(rows[0].makespan / lb.value)

    def test_as_dict(self):
        rows = run_experiment(
            small_workload(), ["equal-partition"], k=16, miss_cost=8, include_impact_lb=False
        )
        d = rows[0].as_dict()
        assert d["algorithm"] == "equal-partition"
        assert isinstance(d["makespan_ratio"], float)


class TestSweep:
    def test_sweep_shapes(self):
        res = sweep_p(
            ["det-par", "equal-partition"],
            [2, 4],
            miss_cost=8,
            workload_factory=default_workload_factory(kind="cyclic", n_requests_per_proc=60),
            cache_factor=4,
            seeds=(0,),
            include_impact_lb=False,
        )
        assert len(res.rows) == 4
        series = res.series("det-par")
        assert set(series) == {2, 4}

    def test_series_of_sorted(self):
        res = sweep_p(
            ["det-par"],
            [4, 2],
            miss_cost=8,
            workload_factory=default_workload_factory(kind="cyclic", n_requests_per_proc=60),
            seeds=(0,),
            include_impact_lb=False,
        )
        ps, ys = series_of(res, "det-par")
        assert ps.tolist() == [2, 4]
        assert len(ys) == 2

    def test_workload_deterministic_per_p(self):
        kwargs = dict(
            miss_cost=8,
            workload_factory=default_workload_factory(kind="zipf", n_requests_per_proc=80),
            seeds=(0,),
            include_impact_lb=False,
            workload_seed=7,
        )
        a = sweep_p(["det-par"], [4], **kwargs)
        b = sweep_p(["det-par"], [4], **kwargs)
        assert a.rows[0].makespan == b.rows[0].makespan
