"""The stable RunSpec API and its deprecation shims.

Covers the redesigned public surface: ``RunSpec`` validation, the
RunSpec/legacy equivalence of ``make_algorithm`` and ``run_experiment``,
parallel/serial row parity, registry overwrite semantics, and the
versioned row schema.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    SCHEMA_VERSION,
    RunSpec,
    execution,
    make_algorithm,
    register_algorithm,
    run_experiment,
)
from repro.parallel.schedulers import ALGORITHM_REGISTRY
from repro.workloads import ParallelWorkload, cyclic, zipf


@pytest.fixture
def workload():
    rng = np.random.default_rng(1)
    return ParallelWorkload.from_local(
        [cyclic(100, 6), cyclic(100, 9), zipf(100, 30, 1.2, rng)]
    )


SPECS = [
    RunSpec("det-par", cache_size=16, miss_cost=8, xi=2),
    RunSpec("rand-par", cache_size=16, miss_cost=8, xi=2),
]


class TestRunSpec:
    def test_k_property(self):
        assert RunSpec("det-par", cache_size=32, miss_cost=8, xi=2).k == 16
        assert RunSpec("det-par", cache_size=32, miss_cost=8).k == 32  # xi defaults to 1

    def test_with_seed(self):
        spec = RunSpec("rand-par", cache_size=16, miss_cost=8, seed=0)
        assert spec.with_seed(7).seed == 7
        assert spec.seed == 0  # frozen: original untouched

    def test_hashable_for_cache_keys(self):
        assert len({SPECS[0], SPECS[0], SPECS[1]}) == 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cache_size": 16, "miss_cost": 8, "xi": 0},
            {"cache_size": 0, "miss_cost": 8},
            {"cache_size": 16, "miss_cost": 0},
            {"cache_size": 15, "miss_cost": 8, "xi": 2},  # not divisible by xi
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RunSpec("det-par", **kwargs)


class TestMakeAlgorithm:
    def test_runspec_form(self):
        alg = make_algorithm(RunSpec("det-par", cache_size=16, miss_cost=8))
        assert alg.cache_size == 16 and alg.miss_cost == 8

    def test_legacy_form_warns_but_matches(self, workload):
        spec = RunSpec("rand-par", cache_size=16, miss_cost=8, seed=3)
        with pytest.warns(DeprecationWarning, match="RunSpec"):
            legacy = make_algorithm("rand-par", 16, 8, seed=3)
        assert legacy.run(workload).makespan == make_algorithm(spec).run(workload).makespan

    def test_mixing_forms_rejected(self):
        with pytest.raises(TypeError, match="not both"):
            make_algorithm(RunSpec("det-par", cache_size=16, miss_cost=8), cache_size=16)

    def test_legacy_form_requires_sizes(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError, match="cache_size"):
                make_algorithm("det-par")


class TestRegistryOverwrite:
    def test_duplicate_rejected_then_overwritten(self):
        original = ALGORITHM_REGISTRY["det-par"]
        marker = lambda cache_size, miss_cost, seed: original(cache_size, miss_cost, seed)
        try:
            with pytest.raises(ValueError, match="overwrite=True"):
                register_algorithm("det-par", marker)
            register_algorithm("det-par", marker, overwrite=True)
            assert ALGORITHM_REGISTRY["det-par"] is marker
        finally:
            register_algorithm("det-par", original, overwrite=True)


class TestRunExperiment:
    def test_runspec_and_legacy_rows_identical(self, workload):
        stable = run_experiment(workload, SPECS, seeds=(0, 1, 2))
        with pytest.warns(DeprecationWarning, match="RunSpec"):
            legacy = run_experiment(
                workload, ["det-par", "rand-par"], k=8, miss_cost=8, xi=2, seeds=(0, 1, 2)
            )
        assert [r.as_dict() for r in stable] == [r.as_dict() for r in legacy]

    def test_parallel_rows_identical_to_serial(self, workload, tmp_path):
        serial = run_experiment(workload, SPECS, seeds=(0, 1, 2, 3))
        with execution(jobs=2, cache=True, cache_dir=tmp_path):
            pooled = run_experiment(workload, SPECS, seeds=(0, 1, 2, 3))
            warm = run_experiment(workload, SPECS, seeds=(0, 1, 2, 3))
        assert [r.as_dict() for r in pooled] == [r.as_dict() for r in serial]
        assert [r.as_dict() for r in warm] == [r.as_dict() for r in serial]

    def test_rows_carry_schema_version(self, workload):
        (row,) = run_experiment(workload, [SPECS[0]], seeds=(0, 1))
        assert row.as_dict()["schema_version"] == SCHEMA_VERSION

    def test_specs_must_share_k(self, workload):
        with pytest.raises(ValueError, match="share one k"):
            run_experiment(
                workload,
                [SPECS[0], RunSpec("rand-par", cache_size=32, miss_cost=8, xi=2)],
            )

    def test_specs_must_share_miss_cost(self, workload):
        with pytest.raises(ValueError, match="miss_cost"):
            run_experiment(
                workload,
                [SPECS[0], RunSpec("rand-par", cache_size=16, miss_cost=4, xi=2)],
            )

    def test_mixing_specs_and_legacy_args_rejected(self, workload):
        with pytest.raises(TypeError, match="not both"):
            run_experiment(workload, SPECS, k=8, miss_cost=8)
