"""Tests for the era (survivor-halving) analysis."""

from __future__ import annotations

import numpy as np

from repro.analysis import era_analysis, survivors_over_time
from repro.parallel import ParallelRunResult


def result_with(completions):
    return ParallelRunResult(
        algorithm="x",
        completion_times=np.asarray(completions, dtype=np.int64),
        trace=[],
        cache_size=8,
        miss_cost=4,
    )


class TestSurvivorsOverTime:
    def test_step_function(self):
        res = result_with([10, 20, 20, 40])
        times, counts = survivors_over_time(res)
        assert times.tolist() == [0, 10, 20, 40]
        assert counts.tolist() == [4, 3, 1, 0]

    def test_empty_sequences_finish_at_zero(self):
        res = result_with([0, 15])
        times, counts = survivors_over_time(res)
        assert times.tolist() == [0, 15]
        assert counts.tolist() == [1, 0]


class TestEraAnalysis:
    def test_empty(self):
        report = era_analysis(result_with([]))
        assert report.boundaries == ()

    def test_single_processor(self):
        report = era_analysis(result_with([30]))
        assert report.boundaries == (30,)
        assert report.durations == (30,)

    def test_halving_boundaries(self):
        # 8 processors: boundaries at 4th, 6th, 7th completions; final = makespan
        completions = [10, 20, 30, 40, 50, 60, 70, 80]
        report = era_analysis(result_with(completions))
        assert report.boundaries == (40, 60, 70, 80)
        assert report.durations == (40, 20, 10, 10)

    def test_balance_of_equal_eras(self):
        completions = [10, 10, 20, 20, 30, 30, 40, 40]
        report = era_analysis(result_with(completions))
        # halving at 4th (20), 6th (30), 7th (40) completion; end 40
        assert report.boundaries[0] == 20
        assert report.balance >= 1.0

    def test_simultaneous_finish(self):
        report = era_analysis(result_with([50, 50, 50, 50]))
        assert report.boundaries[-1] == 50
        assert sum(report.durations) == 50

    def test_adversarial_run_has_eras(self):
        """End-to-end: the §4 instance produces a multi-era structure."""
        from repro.core import BlackBoxPar
        from repro.workloads import build_adversarial_instance

        inst = build_adversarial_instance(3, alpha=0.25, suffix_phase_multiplier=1)
        s = inst.recommended_miss_cost()
        res = BlackBoxPar(2 * inst.k, s).run(inst.workload)
        report = era_analysis(res)
        assert len(report.boundaries) >= 2
        assert sum(report.durations) == res.makespan
