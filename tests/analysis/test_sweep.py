"""Unit tests for the p-sweep driver and its series extraction helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.harness import ExperimentRow
from repro.analysis.sweep import SweepResult, default_workload_factory, series_of, sweep_p


@pytest.fixture(scope="module")
def small_sweep():
    import repro.experiments  # noqa: F401  (registers algorithm factories)

    return sweep_p(
        algorithms=["det-par", "global-lru"],
        p_values=[2, 4],
        miss_cost=3,
        workload_factory=default_workload_factory(kind="cyclic", n_requests_per_proc=120),
        seeds=(0,),
    )


def test_sweep_produces_one_row_per_algorithm_per_p(small_sweep):
    assert small_sweep.p_values == [2, 4]
    assert len(small_sweep.rows) == 4  # 2 algorithms x 2 p values
    assert {(r.algorithm, r.p) for r in small_sweep.rows} == {
        ("det-par", 2), ("det-par", 4), ("global-lru", 2), ("global-lru", 4),
    }


def test_rows_carry_certified_ratios(small_sweep):
    for row in small_sweep.rows:
        assert row.makespan > 0
        assert row.makespan_ratio is not None and row.makespan_ratio >= 1.0
        assert row.failed == 0


def test_series_extracts_per_algorithm_curve(small_sweep):
    series = small_sweep.series("det-par")
    assert sorted(series) == [2, 4]
    assert all(v >= 1.0 for v in series.values())
    assert small_sweep.series("no-such-algorithm") == {}


def test_series_of_returns_sorted_arrays(small_sweep):
    ps, ys = series_of(small_sweep, "global-lru")
    assert list(ps) == [2.0, 4.0]
    assert ys.dtype == np.float64 and len(ys) == 2


def test_as_dicts_round_trips_schema(small_sweep):
    dicts = small_sweep.as_dicts()
    assert len(dicts) == len(small_sweep.rows)
    assert all("algorithm" in d and "p" in d for d in dicts)


def test_series_skips_rows_with_missing_field():
    rows = [
        ExperimentRow(
            algorithm="a", p=2, seeds=1, makespan=10.0, makespan_ratio=None,
            max_makespan_ratio=None, mean_completion_ratio=None,
            xi_measured=1.0, utilization=0.5,
        ),
        ExperimentRow(
            algorithm="a", p=4, seeds=1, makespan=20.0, makespan_ratio=1.5,
            max_makespan_ratio=1.5, mean_completion_ratio=1.2,
            xi_measured=1.0, utilization=0.5,
        ),
    ]
    result = SweepResult(rows=rows, p_values=[2, 4])
    assert result.series("a") == {4: 1.5}


def test_default_workload_factory_scales_with_p():
    factory = default_workload_factory(kind="cyclic", n_requests_per_proc=50)
    wl = factory(4, 16, np.random.default_rng(0))
    assert wl.p == 4
    assert all(len(s) == 50 for s in wl.sequences)
