"""Tests for the Gantt and memory-profile renderers."""

from __future__ import annotations

import numpy as np

from repro.analysis import render_gantt, render_memory_profile
from repro.parallel import BoxRecord, ParallelRunResult


def rec(proc, height, start, end):
    return BoxRecord(
        proc=proc, height=height, start=start, end=end,
        served_start=0, served_end=0, hits=0, faults=0,
    )


def result_with(trace, completions, cache=16):
    return ParallelRunResult(
        algorithm="x",
        completion_times=np.asarray(completions, dtype=np.int64),
        trace=trace,
        cache_size=cache,
        miss_cost=4,
    )


class TestGantt:
    def test_empty(self):
        assert "no box trace" in render_gantt(result_with([], [0]))

    def test_height_levels_rendered(self):
        res = result_with([rec(0, 8, 0, 50), rec(0, 2, 50, 100)], [100])
        text = render_gantt(res, width=20)
        assert "3" in text  # log2(8)
        assert "1" in text  # log2(2)
        assert text.splitlines()[0].startswith("p0")

    def test_idle_time_dotted(self):
        res = result_with([rec(0, 4, 0, 10)], [100])
        text = render_gantt(res, width=20)
        assert "." in text.splitlines()[0]

    def test_completion_marker(self):
        res = result_with([rec(0, 4, 0, 100)], [100])
        text = render_gantt(res, width=20)
        assert "|" in text.splitlines()[0]

    def test_proc_subset(self):
        res = result_with([rec(0, 4, 0, 10), rec(1, 4, 0, 10)], [10, 10])
        text = render_gantt(res, procs=[1], width=10)
        assert "p1" in text and "p0" not in text

    def test_title(self):
        res = result_with([rec(0, 4, 0, 10)], [10])
        assert render_gantt(res, title="T").startswith("T")

    def test_overlapping_boxes_show_tallest(self):
        res = result_with([rec(0, 2, 0, 100), rec(0, 16, 40, 60)], [100])
        text = render_gantt(res, width=10)
        row = text.splitlines()[0]
        assert "4" in row  # log2(16) visible in the overlap bins
        assert "1" in row


class TestMemoryProfile:
    def test_empty(self):
        assert "no box trace" in render_memory_profile(result_with([], [0]))

    def test_peak_labelled(self):
        res = result_with([rec(0, 4, 0, 10), rec(1, 8, 5, 15)], [10, 15])
        text = render_memory_profile(res, width=20, height=4)
        assert "peak=12" in text
        assert "cache=16" in text

    def test_skyline_monotone_rows(self):
        """Higher rows of the skyline are subsets of lower rows."""
        res = result_with([rec(0, 4, 0, 10), rec(1, 8, 5, 15), rec(0, 2, 10, 30)], [30, 15])
        text = render_memory_profile(res, width=24, height=5)
        rows = [l.split("|")[1] for l in text.splitlines() if l.count("|") == 2]
        for upper, lower in zip(rows, rows[1:]):
            for cu, cl in zip(upper, lower):
                assert not (cu == "█" and cl == " ")
