"""Tests for the ASCII plotting primitives."""

from __future__ import annotations

import pytest

from repro.analysis import bar_chart, line_chart


class TestLineChart:
    def test_empty(self):
        assert "(no data)" in line_chart({})
        assert "(no data)" in line_chart({"a": {}})

    def test_contains_markers_and_legend(self):
        text = line_chart({"det": {2: 1.0, 8: 3.0}, "eq": {2: 1.0, 8: 5.0}}, width=30, height=6)
        assert "o=det" in text and "x=eq" in text
        assert "o" in text.splitlines()[0] or any("o" in l for l in text.splitlines())

    def test_y_range_labels(self):
        text = line_chart({"a": {2: 1.5, 4: 9.5}}, width=20, height=5)
        assert "9.50" in text and "1.50" in text

    def test_log_x_axis_labels(self):
        text = line_chart({"a": {2: 1.0, 32: 2.0}}, width=20, height=4, log_x=True)
        assert "2" in text and "32" in text and "log scale" in text

    def test_linear_axis(self):
        text = line_chart({"a": {0: 1.0, 10: 2.0}}, width=20, height=4, log_x=False)
        assert "log scale" not in text

    def test_constant_series_does_not_crash(self):
        text = line_chart({"a": {4: 2.0, 8: 2.0}}, width=10, height=4)
        assert "|" in text

    def test_title(self):
        assert line_chart({"a": {2: 1.0, 4: 2.0}}, title="T").startswith("T")

    def test_grid_dimensions(self):
        text = line_chart({"a": {2: 1.0, 4: 2.0}}, width=24, height=7)
        rows = [l for l in text.splitlines() if l.rstrip().endswith("|")]
        assert len(rows) == 7


class TestBarChart:
    def test_empty(self):
        assert "(no data)" in bar_chart({})

    def test_scaling(self):
        text = bar_chart({"small": 1.0, "big": 2.0}, width=10)
        lines = text.splitlines()
        small = next(l for l in lines if l.startswith("small"))
        big = next(l for l in lines if l.startswith("  big"))
        assert small.count("█") == 5
        assert big.count("█") == 10

    def test_values_formatted(self):
        text = bar_chart({"x": 1.2345}, fmt="{:.1f}")
        assert "1.2" in text

    def test_zero_max(self):
        text = bar_chart({"x": 0.0})
        assert "█" not in text

    def test_title(self):
        assert bar_chart({"x": 1.0}, title="My Bars").startswith("My Bars")
