"""Unit tests for the well-roundedness / balance audit machinery."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.well_rounded import (
    BalanceReport,
    WellRoundedReport,
    _gaps_within,
    _merge_intervals,
    audit_balance,
    audit_well_rounded,
)
from repro.parallel import BoxRecord, ParallelRunResult


class TestMergeIntervals:
    def test_empty(self):
        assert _merge_intervals([]) == []

    def test_disjoint(self):
        assert _merge_intervals([(5, 7), (0, 2)]) == [(0, 2), (5, 7)]

    def test_overlapping(self):
        assert _merge_intervals([(0, 5), (3, 8)]) == [(0, 8)]

    def test_adjacent_merge(self):
        assert _merge_intervals([(0, 5), (5, 8)]) == [(0, 8)]

    def test_nested(self):
        assert _merge_intervals([(0, 10), (2, 4)]) == [(0, 10)]

    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 50)).map(lambda t: (min(t), max(t))), max_size=20))
    @settings(max_examples=100)
    def test_merged_cover_same_points(self, intervals):
        merged = _merge_intervals(list(intervals))
        # same point coverage
        def covered(iv, x):
            return any(a <= x < b for a, b in iv)
        for x in range(51):
            assert covered(intervals, x) == covered(merged, x)
        # and merged intervals are disjoint, sorted, non-adjacent
        for (a1, b1), (a2, b2) in zip(merged, merged[1:]):
            assert b1 < a2


class TestGapsWithin:
    def test_no_cover_is_one_gap(self):
        assert _gaps_within([], 0, 10) == [10]

    def test_full_cover(self):
        assert _gaps_within([(0, 10)], 0, 10) == []

    def test_leading_and_trailing(self):
        assert _gaps_within([(3, 6)], 0, 10) == [3, 4]

    def test_internal_gap(self):
        assert _gaps_within([(0, 2), (5, 10)], 0, 10) == [3]

    def test_window_clipping(self):
        assert _gaps_within([(-5, 3), (8, 20)], 0, 10) == [5]

    def test_empty_window(self):
        assert _gaps_within([(0, 1)], 5, 5) == []

    @given(
        st.lists(st.tuples(st.integers(0, 40), st.integers(0, 40)).map(lambda t: (min(t), max(t))), max_size=10),
        st.integers(0, 20),
        st.integers(20, 40),
    )
    @settings(max_examples=100)
    def test_gaps_sum_matches_uncovered_measure(self, intervals, lo, hi):
        gaps = _gaps_within(list(intervals), lo, hi)
        uncovered = sum(
            1 for x in range(lo, hi) if not any(a <= x < b for a, b in intervals)
        )
        assert sum(gaps) == uncovered
        assert all(g > 0 for g in gaps)


def _phase(index=0, start_time=0, active=2, base=2, k_int=8, levels=3, slots=None, reserved=8):
    from repro.core.det_par import _PhaseInfo

    return _PhaseInfo(
        index=index,
        start_time=start_time,
        active_at_start=active,
        base_height=base,
        k_int=k_int,
        levels=levels,
        strip_slots=slots or {},
        reserved_height=reserved,
    )


def _result(trace, completions, phases, cache=16, s=4):
    return ParallelRunResult(
        algorithm="synthetic",
        completion_times=np.asarray(completions, dtype=np.int64),
        trace=trace,
        cache_size=cache,
        miss_cost=s,
        meta={"phases": phases},
    )


def _box(proc, height, start, end, phase=0, tag="base"):
    return BoxRecord(
        proc=proc, height=height, start=start, end=end,
        served_start=0, served_end=0, hits=0, faults=0, phase=phase, tag=tag,
    )


class TestAuditWellRounded:
    def test_requires_phase_metadata(self):
        res = ParallelRunResult("x", np.asarray([1]), [], 8, 4)
        with pytest.raises(ValueError):
            audit_well_rounded(res)
        with pytest.raises(ValueError):
            audit_balance(res)

    def test_perfectly_covered_synthetic_trace(self):
        # one processor, base boxes back to back covering [0, 100)
        trace = [_box(0, 2, t, t + 10) for t in range(0, 100, 10)]
        res = _result(trace, [100], [_phase(active=1)])
        report = audit_well_rounded(res)
        assert report.base_covered
        assert report.max_base_gap == 0

    def test_uncovered_stretch_detected(self):
        trace = [_box(0, 2, 0, 10), _box(0, 2, 30, 100)]
        res = _result(trace, [100], [_phase(active=1)])
        report = audit_well_rounded(res)
        assert not report.base_covered
        assert report.max_base_gap == 20

    def test_short_boxes_below_base_do_not_count(self):
        trace = [_box(0, 1, t, t + 10) for t in range(0, 100, 10)]  # height 1 < base 2
        res = _result(trace, [100], [_phase(active=1, base=2)])
        report = audit_well_rounded(res)
        assert not report.base_covered

    def test_gap_factor_scales_with_missing_tall_boxes(self):
        """Base coverage without any height-8 box for a long window yields a
        large normalized factor for z=8."""
        s, b, L = 4, 2, 3
        horizon = 4000
        trace = [_box(0, 2, t, t + 8) for t in range(0, horizon, 8)]
        res = _result(trace, [horizon], [_phase(active=1, base=b, levels=L)], s=s)
        report = audit_well_rounded(res)
        # heights 4 and 8 never appear; both gaps equal the horizon, and the
        # normalization z² makes the *smallest* missing height the worst
        expected = horizon * b / (4 * 4 * s * L)
        assert report.max_gap_factor == pytest.approx(expected)
        assert report.worst[2] == 4

    def test_audit_window_ends_at_completion(self):
        """Boxes are only required while the processor is alive."""
        trace = [_box(0, 2, 0, 10)]
        res = _result(trace, [10], [_phase(active=1)])
        report = audit_well_rounded(res)
        assert report.base_covered


class TestAuditBalance:
    def test_spread_zero_for_identical_processors(self):
        trace = [_box(0, 4, 0, 50), _box(1, 4, 0, 50)]
        res = _result(trace, [50, 50], [_phase(active=2)])
        report = audit_balance(res)
        assert report.max_phase_spread == 0.0

    def test_spread_detects_imbalance(self):
        trace = [_box(0, 8, 0, 100), _box(1, 1, 0, 100)]
        res = _result(trace, [100, 100], [_phase(active=2)], cache=8, s=4)
        report = audit_balance(res)
        # spread = (800 - 100) / (s * k^2) = 700 / 256
        assert report.max_phase_spread == pytest.approx(700 / 256)

    def test_reserved_fraction(self):
        res = _result([], [1], [_phase(reserved=12)], cache=16)
        report = audit_balance(res)
        assert report.min_reserved_fraction == pytest.approx(0.75)

    def test_early_finishers_excluded(self):
        """Only processors surviving the whole phase enter the spread."""
        trace = [_box(0, 8, 0, 10), _box(1, 1, 0, 100)]
        res = _result(trace, [10, 100], [_phase(active=2)], cache=8, s=4)
        report = audit_balance(res)
        # proc 0 finished at 10 < phase end (100): spread over proc 1 only = 0
        assert report.max_phase_spread == 0.0
