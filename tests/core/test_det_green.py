"""Tests for DET-GREEN and the deficit credit scheduler."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.core import DetGreen, HeightLattice, credit_schedule, make_distribution
from repro.green import optimal_box_profile
from repro.workloads import cyclic, scan


class TestCreditSchedule:
    def test_rejects_nonpositive_weights(self):
        with pytest.raises(ValueError):
            next(credit_schedule(np.array([1.0, 0.0])))

    def test_frequencies_match_weights(self):
        w = np.array([1.0, 0.25, 0.0625])
        sched = credit_schedule(w)
        n = 30_000
        counts = Counter(next(sched) for _ in range(n))
        total = w.sum()
        for level, weight in enumerate(w):
            assert abs(counts[level] / n - weight / total) < 0.01, level

    def test_gap_bound(self):
        """Consecutive emissions of level i are at most ~Z/w_i apart."""
        w = np.array([1.0, 0.25, 0.0625, 0.015625])
        z = w.sum()
        sched = credit_schedule(w)
        emissions = [next(sched) for _ in range(50_000)]
        last = {}
        max_gap = {}
        for t, lev in enumerate(emissions):
            if lev in last:
                gap = t - last[lev]
                max_gap[lev] = max(max_gap.get(lev, 0), gap)
            last[lev] = t
        for level, weight in enumerate(w):
            # deficit scheduling keeps per-level credit within ±1 of its
            # running quota, so consecutive emissions of level i are at most
            # ~2Z/w_i apart (credit must climb from about -1 back past the
            # rest of the field)
            bound = int(np.ceil(2 * z / weight)) + 2
            assert max_gap[level] <= bound, (level, max_gap[level], bound)

    def test_start_index_offsets_stream(self):
        w = np.array([1.0, 0.5])
        a = credit_schedule(w, start_index=0)
        b = credit_schedule(w, start_index=3)
        base = [next(a) for _ in range(20)]
        shifted = [next(b) for _ in range(17)]
        assert base[3:] == shifted

    def test_deterministic(self):
        w = np.array([1.0, 0.25, 0.0625])
        s1 = [next(credit_schedule(w)) for _ in range(1)]
        a = credit_schedule(w)
        b = credit_schedule(w)
        assert [next(a) for _ in range(200)] == [next(b) for _ in range(200)]


class TestDetGreen:
    def test_rejects_bad_miss_cost(self):
        with pytest.raises(ValueError):
            DetGreen(HeightLattice(16, 4), miss_cost=1)

    def test_heights_on_lattice_with_right_frequencies(self):
        lat = HeightLattice(64, 8)
        g = DetGreen(lat, miss_cost=4)
        stream = g.boxes()
        heights = [next(stream) for _ in range(20_000)]
        assert set(heights) <= set(lat.heights)
        counts = Counter(heights)
        pmf = make_distribution(lat, "inverse_square").pmf
        for h, q in zip(lat.heights, pmf):
            assert abs(counts[h] / len(heights) - q) < 0.01

    def test_run_completes_and_accounts(self):
        lat = HeightLattice(16, 4)
        g = DetGreen(lat, miss_cost=5)
        seq = cyclic(400, 10)
        res = g.run(seq)
        assert res.completed
        assert res.impact == res.profile.impact(5)

    def test_fully_deterministic(self):
        lat = HeightLattice(32, 8)
        seq = cyclic(500, 20)
        r1 = DetGreen(lat, 4).run(seq)
        r2 = DetGreen(lat, 4).run(seq)
        assert list(r1.profile) == list(r2.profile)

    def test_oblivious_to_request_sequence(self):
        """The emitted height stream must not depend on the input at all."""
        lat = HeightLattice(32, 8)
        a = DetGreen(lat, 4).run(cyclic(300, 5))
        b = DetGreen(lat, 4).run(scan(300))
        n = min(len(a.profile), len(b.profile))
        assert list(a.profile)[:n] == list(b.profile)[:n]

    def test_competitive_ratio_modest(self):
        """DET-GREEN ratio should be within a small multiple of log2 p (E9)."""
        s = 6
        for p in (4, 8, 16):
            k = 4 * p
            lat = HeightLattice(k, p)
            seq = scan(1200)
            opt = optimal_box_profile(seq, lat, s).impact
            res = DetGreen(lat, s).run(seq)
            ratio = res.impact / opt
            # min boxes are optimal for scans; deficit scheduling wastes at
            # most the equalized impact of the other log p levels
            assert ratio <= 2.5 * lat.levels, (p, ratio)
