"""Tests for RAND-GREEN (§3.1) — behaviour, accounting, and Theorem 1's shape."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import HeightLattice, RandGreen
from repro.green import optimal_box_profile
from repro.workloads import cyclic, polluted_cycle, scan


def rng(seed=0):
    return np.random.default_rng(seed)


class TestBasics:
    def test_rejects_bad_miss_cost(self):
        with pytest.raises(ValueError):
            RandGreen(HeightLattice(16, 4), miss_cost=1, rng=rng())

    def test_box_stream_heights_on_lattice(self):
        lat = HeightLattice(64, 8)
        g = RandGreen(lat, miss_cost=4, rng=rng(1))
        stream = g.boxes()
        for _ in range(500):
            assert next(stream) in lat.heights

    def test_run_completes(self):
        lat = HeightLattice(16, 4)
        g = RandGreen(lat, miss_cost=4, rng=rng(2))
        seq = cyclic(200, 6)
        res = g.run(seq)
        assert res.completed
        assert res.impact == res.profile.impact(4)
        assert res.wall_time == res.profile.wall_time(4)
        assert res.run.position == len(seq)

    def test_deterministic_given_seed(self):
        lat = HeightLattice(16, 4)
        seq = cyclic(300, 10)
        r1 = RandGreen(lat, 4, rng(7)).run(seq)
        r2 = RandGreen(lat, 4, rng(7)).run(seq)
        assert list(r1.profile) == list(r2.profile)
        assert r1.impact == r2.impact

    def test_different_seeds_differ(self):
        lat = HeightLattice(64, 16)
        seq = cyclic(400, 30)
        r1 = RandGreen(lat, 4, rng(1)).run(seq)
        r2 = RandGreen(lat, 4, rng(2)).run(seq)
        assert list(r1.profile) != list(r2.profile)

    def test_never_worse_than_all_min_boxes_by_much(self):
        """Impact is at most O(log p) × the all-min-box cost in expectation;
        check a loose deterministic-ish bound over several seeds."""
        lat = HeightLattice(32, 8)
        s = 5
        seq = scan(300)  # min boxes are optimal here
        opt = optimal_box_profile(seq, lat, s).impact
        ratios = []
        for seed in range(10):
            res = RandGreen(lat, s, rng(seed)).run(seq)
            ratios.append(res.impact / opt)
        # log2(p)=3, so the mean ratio should be modest (constant × 4 levels)
        assert np.mean(ratios) < 16


class TestTheorem1Shape:
    def test_competitive_on_mixed_workload(self):
        """Mean measured ratio stays within a small multiple of log2 p."""
        s = 6
        for p, budget in [(4, 8), (16, 14)]:
            k = 4 * p
            lat = HeightLattice(k, p)
            seq = polluted_cycle(1500, k - 1, max(2, p // 2))
            opt = optimal_box_profile(seq, lat, s).impact
            ratios = []
            for seed in range(8):
                res = RandGreen(lat, s, rng(seed)).run(seq)
                ratios.append(res.impact / opt)
            assert np.mean(ratios) <= budget, (p, np.mean(ratios))

    def test_useful_subsequence_completion(self):
        """If OPT's profile is a subsequence of the drawn prefix, RAND-GREEN
        has certainly finished by then (the Theorem 1 coupling argument)."""
        lat = HeightLattice(16, 4)
        s = 4
        seq = cyclic(150, 12)
        optp = optimal_box_profile(seq, lat, s).profile
        g = RandGreen(lat, s, rng(3))
        res = g.run(seq)
        # find the prefix of the drawn profile that contains OPT's profile
        drawn = list(res.profile)
        i = 0
        needed = list(optp)
        for count, h in enumerate(drawn, start=1):
            if i < len(needed) and h == needed[i]:
                i += 1
            if i == len(needed):
                assert count >= len(res.profile) or res.completed
                break
        # regardless, the run completed
        assert res.completed
