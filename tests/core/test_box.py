"""Tests for boxes, the height lattice, and box profiles."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Box,
    BoxProfile,
    HeightLattice,
    LatticeError,
    ceil_pow2,
    is_power_of_two,
    validate_lattice,
)


class TestPowerOfTwo:
    def test_positives(self):
        assert all(is_power_of_two(1 << i) for i in range(20))

    def test_negatives(self):
        for x in (0, -1, -2, 3, 5, 6, 7, 12, 100):
            assert not is_power_of_two(x)

    def test_ceil_pow2(self):
        assert [ceil_pow2(x) for x in (1, 2, 3, 4, 5, 17)] == [1, 2, 4, 4, 8, 32]
        with pytest.raises(ValueError):
            ceil_pow2(0)


class TestLatticeError:
    """Satellite: one typed error from one validator, messages pinned."""

    def test_is_a_value_error(self):
        assert issubclass(LatticeError, ValueError)

    def test_p_greater_than_k_message_and_fields(self):
        with pytest.raises(LatticeError) as ei:
            validate_lattice(4, 8)
        err = ei.value
        assert err.param == "p" and err.value == 8 and err.rounded == 4
        assert str(err) == "need p <= k (got p=8; nearest valid p is 4)"

    def test_k_below_one_message_and_fields(self):
        with pytest.raises(LatticeError) as ei:
            validate_lattice(0, 1)
        err = ei.value
        assert err.param == "k" and err.value == 0 and err.rounded == 1
        assert str(err) == "cache size k must be >= 1 (got k=0; nearest valid k is 1)"

    def test_p_below_one_message_and_fields(self):
        with pytest.raises(LatticeError) as ei:
            validate_lattice(8, 0)
        err = ei.value
        assert err.param == "p" and err.value == 0 and err.rounded == 1
        assert str(err) == "processor count p must be >= 1 (got p=0; nearest valid p is 1)"

    def test_constructor_raises_through_the_single_validator(self):
        # old constructor path: invalid geometry still refused, now typed
        with pytest.raises(LatticeError):
            HeightLattice(k=4, p=8)  # p > k
        with pytest.raises(LatticeError):
            HeightLattice(k=0, p=0)


class TestHeightLattice:
    def test_non_power_of_two_accepted(self):
        # new constructor path: arbitrary k >= p >= 1 builds a lattice
        lat = HeightLattice(k=100, p=4)
        assert lat.heights == (25, 50, 100)
        lat = HeightLattice(k=64, p=3)
        assert lat.heights == (21, 42, 64)
        assert lat.min_height == 21 and lat.max_height == 64

    def test_non_power_of_two_top_rung_clamps_to_k(self):
        lat = HeightLattice(k=12, p=5)
        assert lat.heights == (2, 4, 8, 12)
        assert lat.levels == 4
        assert lat.round_up(9) == 12
        assert lat.level_of(12) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            HeightLattice(k=4, p=8)  # p > k
        with pytest.raises(ValueError):
            HeightLattice(k=8, p=0)  # p < 1

    def test_heights(self):
        lat = HeightLattice(k=64, p=8)
        assert lat.heights == (8, 16, 32, 64)
        assert lat.min_height == 8
        assert lat.max_height == 64
        assert lat.levels == 4

    def test_p_equals_one(self):
        lat = HeightLattice(k=16, p=1)
        assert lat.heights == (16,)
        assert lat.levels == 1

    def test_p_equals_k(self):
        lat = HeightLattice(k=8, p=8)
        assert lat.heights == (1, 2, 4, 8)

    def test_level_of(self):
        lat = HeightLattice(k=64, p=8)
        assert [lat.level_of(h) for h in lat.heights] == [0, 1, 2, 3]
        for bad in (4, 7, 12, 24, 65, 128):
            with pytest.raises(ValueError):
                lat.level_of(bad)

    def test_contains(self):
        lat = HeightLattice(k=64, p=8)
        assert lat.contains(16)
        assert not lat.contains(17)
        assert not lat.contains(4)

    def test_round_up(self):
        lat = HeightLattice(k=64, p=8)
        assert lat.round_up(1) == 8
        assert lat.round_up(8) == 8
        assert lat.round_up(9) == 16
        assert lat.round_up(17) == 32
        assert lat.round_up(33) == 64
        assert lat.round_up(64) == 64
        assert lat.round_up(1000) == 64  # clamped to max

    def test_restrict(self):
        lat = HeightLattice(k=64, p=16)
        half = lat.restrict(8)
        assert half.min_height == 8
        assert half.k == 64

    def test_iteration(self):
        lat = HeightLattice(k=32, p=4)
        assert list(lat) == [8, 16, 32]

    @given(st.integers(0, 10), st.integers(0, 10))
    @settings(max_examples=60)
    def test_round_up_is_idempotent_and_dominating(self, a, b):
        k = 1 << max(a, b)
        p = 1 << min(a, b)
        lat = HeightLattice(k=k, p=p)
        for h in range(1, k + 2):
            r = lat.round_up(h)
            assert lat.contains(r)
            assert lat.round_up(r) == r
            assert r >= min(h, lat.max_height) or r == lat.min_height


class TestBox:
    def test_validation(self):
        with pytest.raises(ValueError):
            Box(0)

    def test_duration_and_impact(self):
        b = Box(8)
        assert b.duration(10) == 80
        assert b.impact(10) == 640


class TestBoxProfile:
    def test_construction_and_append(self):
        bp = BoxProfile([2, 4])
        bp.append(8)
        bp.extend([2, 2])
        assert list(bp) == [2, 4, 8, 2, 2]
        assert len(bp) == 5
        assert bp[2] == 8

    def test_rejects_bad_heights(self):
        with pytest.raises(ValueError):
            BoxProfile([0])
        bp = BoxProfile()
        with pytest.raises(ValueError):
            bp.append(-1)

    def test_impact_and_wall_time(self):
        bp = BoxProfile([2, 4])
        assert bp.impact(10) == 10 * (4 + 16)
        assert bp.wall_time(10) == 10 * 6

    def test_equality(self):
        assert BoxProfile([1, 2]) == BoxProfile([1, 2])
        assert BoxProfile([1, 2]) != BoxProfile([2, 1])

    def test_validate_on_lattice(self):
        lat = HeightLattice(k=16, p=4)
        BoxProfile([4, 8, 16]).validate_on(lat)
        with pytest.raises(ValueError):
            BoxProfile([4, 5]).validate_on(lat)

    def test_subsequence(self):
        assert BoxProfile([2, 8]).is_subsequence_of(BoxProfile([2, 4, 8]))
        assert BoxProfile([]).is_subsequence_of(BoxProfile([]))
        assert not BoxProfile([8, 2]).is_subsequence_of(BoxProfile([2, 4, 8]))
        assert not BoxProfile([2, 2]).is_subsequence_of(BoxProfile([2]))

    def test_count_level_usage(self):
        lat = HeightLattice(k=16, p=4)
        bp = BoxProfile([4, 4, 8, 16, 4])
        assert bp.count_level_usage(lat).tolist() == [3, 1, 1]

    @given(
        st.lists(st.sampled_from([1, 2, 4, 8]), max_size=30),
        st.lists(st.sampled_from([1, 2, 4, 8]), max_size=30),
    )
    @settings(max_examples=100)
    def test_subsequence_matches_reference(self, a, b):
        def naive(x, y):
            i = 0
            for v in y:
                if i < len(x) and x[i] == v:
                    i += 1
            return i == len(x)

        assert BoxProfile(a).is_subsequence_of(BoxProfile(b)) == naive(a, b)

    @given(st.lists(st.sampled_from([1, 2, 4, 8]), max_size=30))
    @settings(max_examples=50)
    def test_profile_is_subsequence_of_itself(self, a):
        bp = BoxProfile(a)
        assert bp.is_subsequence_of(bp)
