"""Tests for the inverse-square height distribution and Lemma 1 identities."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HeightLattice, inverse_square_distribution, make_distribution


def lat(k, p):
    return HeightLattice(k=k, p=p)


class TestInverseSquare:
    def test_pmf_sums_to_one(self):
        d = inverse_square_distribution(lat(64, 8))
        assert np.isclose(sum(d.pmf), 1.0)

    def test_pmf_ratios_are_quarters(self):
        d = inverse_square_distribution(lat(64, 16))
        for i in range(len(d.pmf) - 1):
            assert np.isclose(d.pmf[i + 1] / d.pmf[i], 0.25)

    def test_single_level(self):
        d = inverse_square_distribution(lat(16, 1))
        assert d.pmf == (1.0,)
        rng = np.random.default_rng(0)
        assert d.sample(rng) == 16

    def test_lemma1_equalization_exact(self):
        """Pr[j]·s·j² is the same constant for every lattice height."""
        d = inverse_square_distribution(lat(256, 32))
        s = 7
        values = [d.expected_useful_impact(h, s) for h in d.lattice.heights]
        assert np.allclose(values, values[0])

    def test_lemma1_total_is_levels_times_constant(self):
        """E[s·j²] = (#levels) × the per-level constant — the Θ(log p) factor."""
        d = inverse_square_distribution(lat(128, 16))
        s = 5
        const = d.expected_useful_impact(d.lattice.min_height, s)
        assert np.isclose(d.expected_impact_per_box(s), d.lattice.levels * const)

    def test_sampling_distribution(self):
        d = inverse_square_distribution(lat(64, 8))
        rng = np.random.default_rng(42)
        draws = d.sample(rng, size=200_000)
        heights, counts = np.unique(draws, return_counts=True)
        emp = dict(zip(heights.tolist(), (counts / len(draws)).tolist()))
        for h, q in zip(d.lattice.heights, d.pmf):
            assert abs(emp.get(h, 0.0) - q) < 0.01

    def test_sample_single_returns_int(self):
        d = inverse_square_distribution(lat(64, 8))
        h = d.sample(np.random.default_rng(1))
        assert isinstance(h, int)
        assert h in d.lattice.heights

    def test_probability_of_off_lattice_raises(self):
        d = inverse_square_distribution(lat(64, 8))
        with pytest.raises(ValueError):
            d.probability_of(9)


class TestAblationVariants:
    def test_uniform(self):
        d = make_distribution(lat(64, 8), "uniform")
        assert np.allclose(d.pmf, 1.0 / 4)

    def test_inverse_linear(self):
        d = make_distribution(lat(64, 8), "inverse_linear")
        for i in range(len(d.pmf) - 1):
            assert np.isclose(d.pmf[i + 1] / d.pmf[i], 0.5)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_distribution(lat(64, 8), "cauchy")  # type: ignore[arg-type]

    def test_uniform_does_not_equalize_impact(self):
        """Only the inverse-square law satisfies Lemma 1's equalization."""
        d = make_distribution(lat(64, 8), "uniform")
        v = [d.expected_useful_impact(h, 3) for h in d.lattice.heights]
        assert v[-1] > v[0] * 10

    @given(st.integers(0, 8), st.integers(2, 10))
    @settings(max_examples=40)
    def test_all_kinds_normalized(self, logp, s):
        lattice = lat(1 << max(logp, 3), 1 << min(logp, 3))
        for kind in ("inverse_square", "inverse_linear", "uniform"):
            d = make_distribution(lattice, kind)
            assert np.isclose(sum(d.pmf), 1.0)
            assert d.expected_impact_per_box(s) > 0
            assert d.expected_duration_per_box(s) >= s * lattice.min_height


class TestExpectedDuration:
    def test_matches_manual(self):
        d = inverse_square_distribution(lat(8, 4))
        # heights 2,4,8 with weights 1,1/4,1/16 -> Z=21/16
        z = 1 + 0.25 + 0.0625
        expect = (2 * 1 + 4 * 0.25 + 8 * 0.0625) / z
        assert np.isclose(d.expected_duration_per_box(1), expect)
