"""CLI surface of the execution engine: --jobs, caching flags, cache command."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


def run_e1(tmp_path, capsys, *extra):
    rc = main(["e1", "--cache-dir", str(tmp_path / "cache"), *extra])
    assert rc == 0
    return capsys.readouterr().out


def test_cache_stats_and_clear(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert main(["cache", "--cache-dir", cache_dir]) == 0  # default op is stats
    assert "0 entries" in capsys.readouterr().out

    run_e1(tmp_path, capsys)
    assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
    stats_line = capsys.readouterr().out
    assert "0 entries" not in stats_line and "entries" in stats_line

    assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
    assert "cleared" in capsys.readouterr().out
    main(["cache", "stats", "--cache-dir", cache_dir])
    assert "0 entries" in capsys.readouterr().out


def test_cache_op_rejected_outside_cache_command(capsys):
    with pytest.raises(SystemExit):
        main(["e1", "clear"])


def test_warm_rerun_is_all_hits(tmp_path, capsys):
    cold = run_e1(tmp_path, capsys)
    assert "hit_rate=0%" in cold
    warm = run_e1(tmp_path, capsys)
    assert "hit_rate=100%" in warm


def test_no_cache_never_hits(tmp_path, capsys):
    run_e1(tmp_path, capsys, "--no-cache")
    second = run_e1(tmp_path, capsys, "--no-cache")
    assert "cache_hits=0" in second
    assert not (tmp_path / "cache").exists()


def test_jobs_output_matches_serial(tmp_path, capsys):
    serial = main(["e1", "--no-cache", "--out", str(tmp_path / "serial.md")])
    pooled = main(["e1", "--no-cache", "--jobs", "2", "--out", str(tmp_path / "pooled.md")])
    assert serial == pooled == 0
    strip = lambda text: [l for l in text.splitlines() if not l.startswith("[telemetry]")]
    assert strip((tmp_path / "serial.md").read_text()) == strip(
        (tmp_path / "pooled.md").read_text()
    )


def test_telemetry_jsonl_written(tmp_path, capsys):
    out = tmp_path / "runs.jsonl"
    run_e1(tmp_path, capsys, "--telemetry", str(out))
    rows = [json.loads(line) for line in out.read_text().splitlines()]
    assert rows
    assert all(not r["cached"] for r in rows)  # cold cache
    assert {"kind", "key", "cached", "duration_s", "sim_steps"} <= set(rows[0])

    run_e1(tmp_path, capsys, "--telemetry", str(out))
    rows = [json.loads(line) for line in out.read_text().splitlines()]
    assert any(r["cached"] for r in rows)  # warm rerun appended hit records
