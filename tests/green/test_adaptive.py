"""Tests for the adaptive (progress-driven) green paging algorithm."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import HeightLattice
from repro.green import AdaptiveGreen, optimal_box_profile
from repro.workloads import cyclic, multiscale_cycles, scan


def lat(k=64, p=16):
    return HeightLattice(k, p)


class TestValidation:
    def test_miss_cost(self):
        with pytest.raises(ValueError):
            AdaptiveGreen(lat(), 1)

    def test_thresholds(self):
        with pytest.raises(ValueError):
            AdaptiveGreen(lat(), 8, thrash_fraction=0.2, descend_fraction=0.5)


class TestBehaviour:
    def test_completes(self):
        g = AdaptiveGreen(lat(), 128)
        res = g.run(cyclic(800, 20))
        assert res.completed
        assert res.impact == res.profile.impact(128)

    def test_mostly_min_boxes_on_scan(self):
        """No reuse -> probes fail -> exponential backoff keeps the stream
        dominated by minimum boxes."""
        g = AdaptiveGreen(lat(), 128)
        res = g.run(scan(5000))
        heights = np.asarray(list(res.profile))
        min_fraction = float((heights == lat().min_height).mean())
        assert min_fraction >= 0.6, min_fraction
        # and the wasted probe impact stays a bounded multiple of baseline
        base = len(heights) * 128 * lat().min_height ** 2
        assert res.impact <= 40 * base

    def test_climbs_to_fit_cycle(self):
        """A cycle needing height ~2c makes the ladder climb and stay."""
        k, p, s = 64, 16, 256
        g = AdaptiveGreen(HeightLattice(k, p), s)
        res = g.run(cyclic(3000, 14))  # needs height >= 16ish to hit
        heights = list(res.profile)
        assert max(heights) >= 16
        # the tail should be dominated by boxes that produce hits
        tail = heights[len(heights) // 2 :]
        assert np.mean(tail) >= 8

    def test_max_boxes_guard(self):
        g = AdaptiveGreen(lat(), 8)
        res = g.run(scan(10_000), max_boxes=5)
        assert not res.completed
        assert len(res.profile) == 5

    def test_deterministic(self):
        seq = multiscale_cycles(1500, 64, 16, np.random.default_rng(0))
        a = AdaptiveGreen(lat(), 128).run(seq)
        b = AdaptiveGreen(lat(), 128).run(seq)
        assert list(a.profile) == list(b.profile)


class TestCompetitiveness:
    @pytest.mark.parametrize("p", [4, 8, 16])
    def test_ratio_reasonable_on_multiscale(self, p):
        k = 4 * p
        s = 2 * k
        lattice = HeightLattice(k, p)
        seq = multiscale_cycles(1500, k, p, np.random.default_rng(p))
        opt = optimal_box_profile(seq, lattice, s).impact
        res = AdaptiveGreen(lattice, s).run(seq)
        ratio = res.impact / opt
        # adaptive climbing costs at most a geometric sum per phase change
        assert ratio <= 4 * lattice.levels, ratio

    def test_beats_oblivious_on_static_working_set(self):
        """On a fixed-size cycle the adaptive ladder locks onto the right
        height while oblivious DET-GREEN keeps paying the log p tax."""
        from repro.core import DetGreen

        k, p = 64, 16
        s = 2 * k
        lattice = HeightLattice(k, p)
        seq = cyclic(4000, 14)
        adaptive = AdaptiveGreen(lattice, s).run(seq).impact
        oblivious = DetGreen(lattice, s).run(seq).impact
        assert adaptive < oblivious
