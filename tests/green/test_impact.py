"""Tests for impact accounting and greedily-green certification."""

from __future__ import annotations

import numpy as np

from repro.core import DetGreen, HeightLattice, RandGreen
from repro.green import (
    box_impact,
    certify_greedily_green,
    optimal_box_profile,
    prefix_optimal_impacts,
    profile_impact,
)
from repro.workloads import cyclic, scan


class TestArithmetic:
    def test_box_impact(self):
        assert box_impact(4, 10) == 160

    def test_profile_impact(self):
        assert profile_impact([1, 2, 3], 2) == 2 * (1 + 4 + 9)

    def test_profile_impact_empty(self):
        assert profile_impact([], 5) == 0


class TestGreedyCertification:
    def _setup(self, seq, lat, s, algo):
        res = algo.run(seq)
        opt = optimal_box_profile(seq, lat, s)
        pref = prefix_optimal_impacts(opt)
        return certify_greedily_green(res.run, pref, s)

    def test_det_green_is_greedily_green(self):
        """DET-GREEN's per-prefix ratio stays bounded by O(levels)."""
        lat = HeightLattice(16, 8)
        s = 5
        seq = scan(600)
        report = self._setup(seq, lat, s, DetGreen(lat, s))
        assert report.max_ratio <= 4 * lat.levels
        assert len(report.ratios) > 0

    def test_rand_green_bounded_on_average(self):
        lat = HeightLattice(16, 4)
        s = 5
        seq = cyclic(600, 12)
        maxima = []
        for seed in range(6):
            report = self._setup(seq, lat, s, RandGreen(lat, s, np.random.default_rng(seed)))
            maxima.append(report.max_ratio)
        assert np.mean(maxima) <= 8 * lat.levels

    def test_slack_reduces_ratio(self):
        lat = HeightLattice(16, 4)
        s = 5
        seq = scan(200)
        res = DetGreen(lat, s).run(seq)
        opt = optimal_box_profile(seq, lat, s)
        pref = prefix_optimal_impacts(opt)
        tight = certify_greedily_green(res.run, pref, s, slack=0.0)
        loose = certify_greedily_green(res.run, pref, s, slack=1e9)
        assert loose.max_ratio <= tight.max_ratio
        assert loose.max_ratio == 0.0

    def test_worst_position_is_a_valid_prefix(self):
        lat = HeightLattice(16, 4)
        s = 4
        seq = cyclic(300, 10)
        res = DetGreen(lat, s).run(seq)
        opt = optimal_box_profile(seq, lat, s)
        report = certify_greedily_green(res.run, prefix_optimal_impacts(opt), s)
        assert 0 <= report.worst_position <= len(seq)
