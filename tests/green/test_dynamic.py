"""Tests for green paging with time-varying thresholds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DetGreen, HeightLattice
from repro.green.dynamic import DynamicGreen, ThresholdSchedule, survivor_schedule
from repro.workloads import cyclic, scan


def lat(k=32, p=8):
    return HeightLattice(k, p)


class TestThresholdSchedule:
    def test_validation(self):
        with pytest.raises(ValueError):
            ThresholdSchedule(segments=())
        with pytest.raises(ValueError):
            ThresholdSchedule(segments=((5, lat()),))
        with pytest.raises(ValueError):
            ThresholdSchedule(segments=((0, lat()), (0, lat())))

    def test_lattice_at(self):
        a, b = lat(32, 8), lat(32, 4)
        sched = ThresholdSchedule(segments=((0, a), (100, b)))
        assert sched.lattice_at(0) is a
        assert sched.lattice_at(99) is a
        assert sched.lattice_at(100) is b
        assert sched.lattice_at(10_000) is b

    def test_segment_index(self):
        sched = ThresholdSchedule(segments=((0, lat()), (50, lat(32, 4)), (80, lat(32, 2))))
        assert sched.segment_index_at(0) == 0
        assert sched.segment_index_at(60) == 1
        assert sched.segment_index_at(80) == 2

    def test_constant(self):
        sched = ThresholdSchedule.constant(lat())
        assert sched.lattice_at(12345) is sched.segments[0][1]


class TestSurvivorSchedule:
    def test_min_threshold_doubles(self):
        sched = survivor_schedule(32, 8, [100, 200, 300])
        mins = [l.min_height for _, l in sched.segments]
        assert mins == [4, 8, 16, 32]

    def test_stops_at_one_survivor(self):
        sched = survivor_schedule(8, 4, [10, 20, 30, 40])
        assert len(sched.segments) == 3  # p=4 -> 2 -> 1, then stop

    def test_validation(self):
        with pytest.raises(ValueError):
            survivor_schedule(32, 8, [100, 100])
        with pytest.raises(ValueError):
            survivor_schedule(32, 8, [0])


class TestDynamicGreen:
    def test_validation(self):
        with pytest.raises(ValueError):
            DynamicGreen(ThresholdSchedule.constant(lat()), 1)

    def test_single_segment_matches_det_green(self):
        lattice = lat(16, 4)
        s = 8
        seq = cyclic(400, 6)
        dynamic = DynamicGreen(ThresholdSchedule.constant(lattice), s).run(seq)
        plain = DetGreen(lattice, s).run(seq)
        assert list(dynamic.profile) == list(plain.profile)
        assert dynamic.impact == plain.impact

    def test_heights_respect_active_lattice(self):
        """After the halving time, boxes must come from the shrunken lattice."""
        k, p = 32, 8
        s = 4
        halving = 2000
        sched = survivor_schedule(k, p, [halving])
        res = DynamicGreen(sched, s).run(scan(4000))
        t = 0
        for box in res.run.runs:
            active = sched.lattice_at(t)
            assert box.height in active.heights, (t, box.height)
            t += s * box.height
        # boxes started after the boundary have min height >= 8
        t = 0
        late_heights = []
        for box in res.run.runs:
            if t >= halving:
                late_heights.append(box.height)
            t += s * box.height
        assert late_heights and min(late_heights) >= 8

    def test_reboot_restarts_stream(self):
        """The source is rebooted at the boundary: the post-boundary stream
        is the fresh DET-GREEN prefix for the new lattice."""
        k, p, s = 32, 8, 4
        halving = 500
        sched = survivor_schedule(k, p, [halving])
        res = DynamicGreen(sched, s).run(scan(3000))
        # collect heights of boxes starting at/after the boundary
        t = 0
        post = []
        for box in res.run.runs:
            if t >= halving:
                post.append(box.height)
            t += s * box.height
        fresh = DetGreen(HeightLattice(k, p // 2), s)
        expected = [h for h, _ in zip(fresh.boxes(), range(len(post)))]
        assert post == expected

    def test_completes_and_accounts(self):
        sched = survivor_schedule(16, 4, [300, 900])
        res = DynamicGreen(sched, 6).run(cyclic(800, 5))
        assert res.completed
        assert res.impact == res.profile.impact(6)
        assert res.wall_time == res.profile.wall_time(6)

    def test_max_boxes_guard(self):
        sched = ThresholdSchedule.constant(lat())
        res = DynamicGreen(sched, 4).run(scan(10_000), max_boxes=7)
        assert not res.completed
        assert len(res.profile) == 7
