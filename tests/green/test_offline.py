"""Tests for the offline green-paging DP (optimal compartmentalized profile)."""

from __future__ import annotations

from itertools import product

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HeightLattice
from repro.green import optimal_box_profile, prefix_optimal_impacts
from repro.paging import execute_profile, run_box


def arr(xs):
    return np.asarray(xs, dtype=np.int64)


def brute_force_optimal_impact(seq, lattice, s, max_boxes=12):
    """Enumerate all box profiles up to max_boxes (maximal service per box)."""
    best = [None]

    def go(pos, impact):
        if pos >= len(seq):
            if best[0] is None or impact < best[0]:
                best[0] = impact
            return
        if best[0] is not None and impact >= best[0]:
            return
        for h in lattice.heights:
            end = run_box(seq, pos, h, s * h, s).end
            go(end, impact + s * h * h)

    go(0, 0)
    assert best[0] is not None
    return best[0]


class TestOptimalBoxProfile:
    def test_single_request(self):
        lat = HeightLattice(k=8, p=4)
        res = optimal_box_profile(arr([0]), lat, miss_cost=5)
        # one min box (height 2) suffices: impact 5*4
        assert res.impact == 20
        assert list(res.profile) == [2]

    def test_profile_actually_completes(self):
        lat = HeightLattice(k=16, p=8)
        seq = arr([0, 1, 2, 3] * 25)
        res = optimal_box_profile(seq, lat, miss_cost=4)
        pr = execute_profile(seq, list(res.profile), miss_cost=4)
        assert pr.completed
        assert pr.impact == res.impact

    def test_cycle_prefers_fitting_box_when_misses_are_expensive(self):
        """For a long cycle, boxes that fit the cycle dominate once the miss
        cost is large relative to box heights.

        A height-h box that fits the cycle serves ~s·h hits for impact s·h²
        (1/h impact per request); a thrashing min box serves h_min misses
        for impact s·h_min² (s·h_min per request... i.e. s per miss-served
        request).  Tall boxes win iff s ≫ cycle length — the same regime as
        the paper's Theorem 4 assumption s > ck.
        """
        lat = HeightLattice(k=16, p=8)
        s = 100
        seq = arr((list(range(8)) * 100)[: 8 * 100])
        res = optimal_box_profile(seq, lat, s)
        heights = set(res.profile)
        assert max(heights) >= 8

    def test_cycle_prefers_min_boxes_when_misses_are_cheap(self):
        """Same cycle, tiny s: thrashing min boxes are impact-optimal."""
        lat = HeightLattice(k=16, p=8)
        s = 2
        seq = arr((list(range(8)) * 100)[: 8 * 100])
        res = optimal_box_profile(seq, lat, s)
        assert set(res.profile) == {lat.min_height}

    def test_scan_prefers_min_boxes(self):
        """Use-once streams gain nothing from height: min boxes are optimal."""
        lat = HeightLattice(k=16, p=8)
        s = 6
        seq = arr(list(range(60)))
        res = optimal_box_profile(seq, lat, s)
        assert set(res.profile) == {lat.min_height}

    def test_matches_brute_force_small(self):
        lat = HeightLattice(k=4, p=4)
        s = 3
        for bits in product(range(3), repeat=7):
            seq = arr(bits)
            res = optimal_box_profile(seq, lat, s)
            assert res.impact == brute_force_optimal_impact(seq, lat, s)

    @given(
        st.lists(st.integers(0, 5), min_size=1, max_size=40),
        st.integers(2, 6),
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_brute_force_random(self, seq, s):
        lat = HeightLattice(k=8, p=4)
        res = optimal_box_profile(arr(seq), lat, s)
        assert res.impact == brute_force_optimal_impact(arr(seq), lat, s)

    @given(st.lists(st.integers(0, 6), min_size=1, max_size=60), st.integers(2, 5))
    @settings(max_examples=40, deadline=None)
    def test_profile_reconstruction_consistent(self, seq, s):
        lat = HeightLattice(k=8, p=8)
        res = optimal_box_profile(arr(seq), lat, s)
        assert res.profile.impact(s) == res.impact
        pr = execute_profile(arr(seq), list(res.profile), miss_cost=s)
        assert pr.completed and pr.impact == res.impact

    @given(st.lists(st.integers(0, 4), min_size=1, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_opt_monotone_under_extension(self, seq):
        """Appending requests can never decrease OPT impact."""
        lat = HeightLattice(k=8, p=4)
        s = 4
        shorter = optimal_box_profile(arr(seq[: max(1, len(seq) // 2)]), lat, s)
        longer = optimal_box_profile(arr(seq), lat, s)
        assert longer.impact >= shorter.impact


class TestPrefixOptimalImpacts:
    def test_monotone_nondecreasing(self):
        lat = HeightLattice(k=8, p=4)
        seq = arr([0, 1, 2, 0, 1, 2, 3, 4, 5, 0, 1, 2])
        res = optimal_box_profile(seq, lat, 5)
        pref = prefix_optimal_impacts(res)
        assert len(pref) == len(seq) + 1
        assert pref[0] == 0
        assert all(pref[i] <= pref[i + 1] for i in range(len(pref) - 1))
        assert np.isfinite(pref).all()
        assert pref[-1] == res.impact

    def test_prefix_cost_bounded_by_total(self):
        lat = HeightLattice(k=16, p=4)
        seq = arr(list(range(30)) * 2)
        res = optimal_box_profile(seq, lat, 3)
        pref = prefix_optimal_impacts(res)
        assert all(c <= res.impact for c in pref)
