"""Cross-cutting property tests for every green-paging algorithm.

Hypothesis drives RAND-GREEN, DET-GREEN, ADAPTIVE-GREEN, and DYNAMIC-GREEN
over arbitrary sequences and lattice shapes, checking the invariants the
theory takes for granted: completion, exact impact accounting, lattice
legality, and domination by the offline optimum.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DetGreen, HeightLattice, RandGreen
from repro.green import AdaptiveGreen, DynamicGreen, ThresholdSchedule, optimal_box_profile
from repro.green.dynamic import survivor_schedule


@st.composite
def green_cases(draw):
    log_k = draw(st.integers(2, 5))
    log_p = draw(st.integers(0, log_k))
    k, p = 1 << log_k, 1 << log_p
    n_pages = draw(st.integers(1, 12))
    seq = draw(st.lists(st.integers(0, n_pages - 1), min_size=1, max_size=120))
    s = draw(st.integers(2, 12))
    return HeightLattice(k, p), np.asarray(seq, dtype=np.int64), s


def algorithms_for(lattice, s):
    yield "rand", RandGreen(lattice, s, np.random.default_rng(0))
    yield "det", DetGreen(lattice, s)
    yield "adaptive", AdaptiveGreen(lattice, s)
    yield "dynamic", DynamicGreen(ThresholdSchedule.constant(lattice), s)


class TestUniversalGreenInvariants:
    @given(green_cases())
    @settings(max_examples=40, deadline=None)
    def test_all_complete_with_exact_accounting(self, case):
        lattice, seq, s = case
        for name, alg in algorithms_for(lattice, s):
            res = alg.run(seq)
            assert res.completed, name
            assert res.run.position == len(seq), name
            assert res.impact == res.profile.impact(s), name
            assert res.wall_time == res.profile.wall_time(s), name
            # every served request is accounted once
            assert sum(r.served for r in res.run.runs) == len(seq), name

    @given(green_cases())
    @settings(max_examples=40, deadline=None)
    def test_heights_on_lattice(self, case):
        lattice, seq, s = case
        for name, alg in algorithms_for(lattice, s):
            res = alg.run(seq)
            for h in res.profile:
                assert h in lattice.heights, (name, h)

    @given(green_cases())
    @settings(max_examples=25, deadline=None)
    def test_never_beats_offline_optimum(self, case):
        lattice, seq, s = case
        opt = optimal_box_profile(seq, lattice, s).impact
        for name, alg in algorithms_for(lattice, s):
            res = alg.run(seq)
            assert res.impact >= opt, (name, res.impact, opt)

    @given(green_cases())
    @settings(max_examples=25, deadline=None)
    def test_impact_at_least_minbox_floor(self, case):
        """Any profile spends at least one min box, and at least ~n/(s·h)
        boxes' worth of wall time to serve n requests."""
        lattice, seq, s = case
        h0 = lattice.min_height
        for name, alg in algorithms_for(lattice, s):
            res = alg.run(seq)
            assert res.impact >= s * h0 * h0, name
            assert res.wall_time >= len(seq), name  # each request takes >= 1 step


class TestDynamicMatchesStaticWhenConstant:
    @given(green_cases())
    @settings(max_examples=20, deadline=None)
    def test_constant_schedule_equals_det_green(self, case):
        lattice, seq, s = case
        a = DynamicGreen(ThresholdSchedule.constant(lattice), s).run(seq)
        b = DetGreen(lattice, s).run(seq)
        assert list(a.profile) == list(b.profile)

    @given(green_cases(), st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_survivor_schedule_completes(self, case, halvings):
        lattice, seq, s = case
        if lattice.p == 1:
            return
        times = [200 * (i + 1) for i in range(halvings)]
        sched = survivor_schedule(lattice.k, lattice.p, times)
        res = DynamicGreen(sched, s).run(seq)
        assert res.completed
