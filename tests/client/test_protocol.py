"""Wire-format tests: typed requests/replies round-trip losslessly."""

import json

import numpy as np
import pytest

from repro.client.protocol import (
    ERROR_STATUS,
    PROTOCOL_VERSION,
    ExperimentRequest,
    JobStatus,
    MetricsReply,
    RunReply,
    RunRequest,
    ServiceError,
    SweepRequest,
    TraceReply,
    TraceUpload,
    WorkloadSpec,
    request_from_dict,
)

WL = WorkloadSpec(p=4, n_requests=100, k=16)


def test_run_request_round_trip():
    req = RunRequest(
        algorithms=("det-par", "rand-par"),
        cache_size=64,
        miss_cost=8,
        seeds=(0, 1),
        workload=WL,
        client="alice",
    )
    data = req.to_dict()
    assert data["type"] == "run"
    assert data["protocol_version"] == PROTOCOL_VERSION
    json.dumps(data)  # wire dict must already be JSON-native
    rebuilt = request_from_dict(data)
    assert rebuilt == req


def test_experiment_and_sweep_round_trip():
    for req in (
        ExperimentRequest(name="e1", scale="quick", seed=3, client="bob"),
        SweepRequest(algorithms=("det-par",), p_values=(2, 4), miss_cost=8, seeds=(0,)),
    ):
        assert request_from_dict(req.to_dict()) == req


def test_trace_upload_round_trip():
    up = TraceUpload(name="t", text="0 a\n0 b\n", fmt="address")
    rebuilt = request_from_dict(up.to_dict())
    assert rebuilt == up


def test_numpy_scalars_coerced_on_the_wire():
    req = RunRequest(
        algorithms=("det-par",),
        cache_size=np.int64(32),
        miss_cost=np.int32(8),
        seeds=(np.int64(0),),
        workload=WL,
    )
    data = req.to_dict()
    json.dumps(data)
    assert data["seeds"] == [0]


def test_content_key_excludes_client_identity():
    a = RunRequest(("det-par",), 32, 8, workload=WL, client="alice")
    b = RunRequest(("det-par",), 32, 8, workload=WL, client="bob")
    assert a.content_key() == b.content_key()
    c = RunRequest(("det-par",), 32, 9, workload=WL, client="alice")
    assert a.content_key() != c.content_key()


def test_content_key_distinguishes_request_kinds():
    run = RunRequest(("det-par",), 32, 8, workload=WL)
    exp = ExperimentRequest(name="e1")
    assert run.content_key() != exp.content_key()


@pytest.mark.parametrize(
    "bad",
    [
        RunRequest((), 32, 8, workload=WL),  # no algorithms
        RunRequest(("det-par",), 32, 8, seeds=(), workload=WL),  # no seeds
        RunRequest(("det-par",), 32, 8),  # neither trace nor workload
        RunRequest(("det-par",), 32, 8, trace="t", workload=WL),  # both
        ExperimentRequest(name="e99"),  # unknown experiment
        ExperimentRequest(name="e1", scale="huge"),  # unknown scale
        SweepRequest(algorithms=(), p_values=(2,), miss_cost=8),
        TraceUpload(name="", text="x"),
        TraceUpload(name="t", text=""),
    ],
)
def test_validate_rejects_malformed_requests(bad):
    with pytest.raises(ServiceError) as exc:
        bad.validate()
    assert exc.value.code == "bad-request"
    assert exc.value.status == 400


def test_request_from_dict_rejects_unknown_type_and_version():
    with pytest.raises(ServiceError, match="unknown request type"):
        request_from_dict({"type": "frobnicate"})
    data = ExperimentRequest(name="e1").to_dict()
    data["protocol_version"] = PROTOCOL_VERSION + 1
    with pytest.raises(ServiceError, match="protocol version mismatch"):
        request_from_dict(data)


def test_request_from_dict_revalidates():
    data = RunRequest(("det-par",), 32, 8, workload=WL).to_dict()
    data["algorithms"] = []
    with pytest.raises(ServiceError):
        request_from_dict(data)


def test_service_error_status_mapping():
    assert ServiceError("quota-exceeded", "x").status == 429
    assert ServiceError("queue-full", "x").status == 503
    assert ServiceError("not-found", "x").status == 404
    assert ServiceError("no-such-code", "x").status == 500
    err = ServiceError.from_dict(ServiceError("timeout", "slow").to_dict())
    assert (err.code, err.status, err.message) == ("timeout", 504, "slow")
    assert set(ERROR_STATUS) >= {"bad-request", "quota-exceeded", "queue-full", "timeout"}


def test_workload_spec_build_is_deterministic():
    w1, w2 = WL.build(), WL.build()
    assert w1.p == 4 and len(w1.sequences) == 4
    for s1, s2 in zip(w1.sequences, w2.sequences):
        np.testing.assert_array_equal(s1, s2)
    other = WorkloadSpec(p=4, n_requests=100, k=16, workload_seed=999).build()
    assert any(
        not np.array_equal(a, b) for a, b in zip(w1.sequences, other.sequences)
    )


def test_run_reply_round_trip_and_raise_for_state():
    reply = RunReply(job_id="job-1", state="done", rows=({"a": 1},), table="t", cells=3)
    rebuilt = RunReply.from_dict(reply.to_dict())
    assert rebuilt.rows == ({"a": 1},)
    assert rebuilt.raise_for_state() is rebuilt
    failed = RunReply(
        job_id="job-2", state="failed", error=ServiceError("quota-exceeded", "nope").to_dict()
    )
    with pytest.raises(ServiceError) as exc:
        RunReply.from_dict(failed.to_dict()).raise_for_state()
    assert exc.value.code == "quota-exceeded"


def test_job_status_trace_and_metrics_replies():
    status = JobStatus(job_id="job-9", state="queued", kind="run", queued_ahead=2)
    assert JobStatus.from_dict(status.to_dict()) == status
    trace = TraceReply(name="t", digest="abc", p=2, requests=10)
    assert TraceReply.from_dict(trace.to_dict()) == trace
    metrics = MetricsReply(snapshot={"counters": {"exec.computed": 5}})
    rebuilt = MetricsReply.from_dict(metrics.to_dict())
    assert rebuilt.counter("exec.computed") == 5.0
    assert rebuilt.counter("absent") == 0.0
