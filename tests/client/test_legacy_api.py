"""Dedicated legacy-API module: every pre-existing public call signature
still works after the Session/service redesign.

The :class:`repro.client.Session` facade *fronts* the historical entry
points — it must not fork or break them.  This module pins:

* the stable signatures (`run_experiment`, `sweep_p`,
  `run_named_experiment`, `execution`, `make_algorithm`,
  `register_algorithm`) exactly as they shipped before the redesign;
* the deprecated legacy forms, which keep working through their
  ``DeprecationWarning`` shims;
* the top-level ``repro`` export set (nothing removed, only added);
* row identity: the facade and the historical API produce the same rows.
"""

import inspect

import pytest

import repro
from repro.analysis.harness import SCHEMA_VERSION, run_experiment
from repro.analysis.sweep import sweep_p
from repro.client import RunRequest, Session, WorkloadSpec
from repro.exec import execution
from repro.experiments import run_named_experiment
from repro.parallel.schedulers import RunSpec, make_algorithm, register_algorithm

WL = WorkloadSpec(p=4, n_requests=120, k=16)

#: The public top-level surface before this PR (the seed contract).
PRE_EXISTING_EXPORTS = {
    "BlackBoxPar", "Box", "BoxProfile", "DetGreen", "DetPar", "HeightLattice",
    "RandGreen", "RandPar", "audit_balance", "audit_well_rounded",
    "inverse_square_distribution", "make_distribution", "optimal_box_profile",
    "prefix_optimal_impacts", "BeladySimulation", "FIFOCache", "LRUCache",
    "belady_faults", "miss_ratio_curve", "run_box", "BestStaticPartition",
    "EqualPartition", "GlobalLRU", "ParallelRunResult", "RunSpec",
    "make_algorithm", "makespan_lower_bound", "mean_completion_lower_bound",
    "register_algorithm", "summarize", "SCHEMA_VERSION", "ExperimentRow",
    "run_experiment", "SweepResult", "sweep_p", "ExecutionEngine",
    "ExecutionPolicy", "FailedCell", "ResultCache", "RunCheckpoint",
    "Telemetry", "WorkUnit", "execution", "MetricsRegistry", "Tracer",
    "observability", "AdversarialInstance", "ParallelWorkload",
    "build_adversarial_instance", "lemma8_opt_makespan",
    "make_parallel_workload", "__version__",
}


def _params(fn):
    return list(inspect.signature(fn).parameters)


class TestStableSignaturesUnchanged:
    def test_run_experiment(self):
        assert _params(run_experiment) == [
            "workload", "algorithms", "k", "miss_cost", "xi", "seeds",
            "include_impact_lb", "lower_bound", "mean_lower_bound", "engine",
        ]

    def test_sweep_p(self):
        params = _params(sweep_p)
        assert params[:3] == ["algorithms", "p_values", "miss_cost"]
        assert {"cache_factor", "xi", "seeds", "workload_seed"} <= set(params)

    def test_run_named_experiment(self):
        assert _params(run_named_experiment) == ["name", "scale", "seed"]

    def test_execution_scope(self):
        assert _params(execution)[:2] == ["jobs", "cache"]
        assert {"cache_dir", "policy", "checkpoint"} <= set(_params(execution))

    def test_algorithm_registry(self):
        assert _params(make_algorithm) == ["spec", "cache_size", "miss_cost", "seed"]
        assert _params(register_algorithm) == ["name", "factory", "overwrite"]

    def test_schema_version_unchanged(self):
        # No row field changed in this PR, so no bump (bump-on-change rule).
        assert SCHEMA_VERSION == 4

    def test_top_level_exports_only_grow(self):
        assert PRE_EXISTING_EXPORTS <= set(repro.__all__)
        for name in PRE_EXISTING_EXPORTS:
            assert getattr(repro, name, None) is not None, name


class TestDeprecatedShimsStillWork:
    def test_legacy_run_experiment_form(self):
        workload = WL.build()
        with pytest.warns(DeprecationWarning, match="deprecated"):
            legacy = run_experiment(workload, ["det-par"], k=16, miss_cost=8, xi=2, seeds=[0])
        stable = run_experiment(
            workload,
            [RunSpec(algorithm="det-par", cache_size=32, miss_cost=8, xi=2)],
            seeds=[0],
        )
        assert [r.as_dict() for r in legacy] == [r.as_dict() for r in stable]

    def test_legacy_make_algorithm_form(self):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            pager = make_algorithm("det-par", 32, 8, 0)
        assert pager is not None


class TestFacadeMatchesLegacyPaths:
    def test_session_run_equals_run_experiment(self):
        request = RunRequest(
            algorithms=("det-par",), cache_size=32, miss_cost=8, seeds=(0,), workload=WL
        )
        with Session() as session:
            reply = session.run(request)
        rows = run_experiment(
            WL.build(),
            [RunSpec(algorithm="det-par", cache_size=32, miss_cost=8, xi=2)],
            seeds=[0],
        )
        assert list(reply.rows) == [r.as_dict() for r in rows]

    def test_session_experiment_equals_named_experiment(self):
        with Session() as session:
            reply = session.experiment("e1")
        rows, _ = run_named_experiment("e1", scale="quick", seed=0)
        assert list(reply.rows) == rows

    def test_engine_submission_still_works_inside_execution_scope(self):
        from repro.exec import WorkUnit, current_engine

        workload = WL.build()
        unit = WorkUnit(
            kind="makespan-lb",
            params={"workload": workload, "k": 16, "miss_cost": 8, "include_impact": False},
            label="legacy-lb",
        )
        with execution(jobs=1) as engine:
            assert current_engine() is engine
            outcomes = engine.run([unit])
        assert len(outcomes) == 1 and outcomes[0].value is not None


class TestLegacyCliSurface:
    def test_run_trace_flags_still_parse(self):
        from repro.cli import build_run_parser

        args = build_run_parser().parse_args(
            ["--trace", "app", "--algorithms", "det-par,rand-par",
             "--cache-size", "64", "--miss-cost", "16"]
        )
        assert args.trace == "app" and args.cache_size == 64

    def test_experiment_parser_still_accepts_historical_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["e1", "--scale", "quick", "--jobs", "2"])
        assert args.experiment == "e1" and args.jobs == 2
