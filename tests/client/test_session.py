"""The unified Session facade: one API, the historical rows."""

import numpy as np
import pytest

from repro.analysis.harness import run_experiment
from repro.analysis.sweep import sweep_p
from repro.client import (
    ExperimentRequest,
    HttpSession,
    RunRequest,
    ServiceError,
    Session,
    SweepRequest,
    TraceUpload,
    WorkloadSpec,
    open_session,
)
from repro.experiments import run_named_experiment
from repro.parallel.schedulers import RunSpec

WL = WorkloadSpec(p=4, n_requests=120, k=16)
RUN = RunRequest(algorithms=("det-par",), cache_size=32, miss_cost=8, seeds=(0,), workload=WL)


class TestSessionRun:
    def test_rows_match_the_historical_harness(self):
        with Session() as session:
            reply = session.run(RUN)
        assert reply.state == "done"
        assert reply.cells > 0 and reply.cache_hits == 0
        direct = run_experiment(
            WL.build(),
            [RunSpec(algorithm="det-par", cache_size=32, miss_cost=8, xi=2)],
            seeds=[0],
            include_impact_lb=True,
        )
        assert list(reply.rows) == [row.as_dict() for row in direct]
        assert "det-par" in reply.table

    def test_cache_serves_the_second_identical_request(self, tmp_path):
        with Session(cache=True, cache_dir=tmp_path / "cache") as session:
            first = session.run(RUN)
            second = session.run(RUN)
        assert first.cache_hits == 0
        assert second.cache_hits == second.cells == first.cells
        assert second.rows == first.rows

    def test_invalid_request_is_a_typed_error(self):
        with Session() as session:
            with pytest.raises(ServiceError) as exc:
                session.run(RunRequest(algorithms=("det-par",), cache_size=32, miss_cost=8))
            assert exc.value.code == "bad-request"
            with pytest.raises(ServiceError) as exc:
                session.run(
                    RunRequest(algorithms=("no-such-algo",), cache_size=32, miss_cost=8, workload=WL)
                )
            assert exc.value.code == "bad-request"


class TestSessionExperimentAndSweep:
    def test_experiment_matches_run_named_experiment(self):
        with Session() as session:
            reply = session.experiment("e1", scale="quick", seed=0)
        rows, table = run_named_experiment("e1", scale="quick", seed=0)
        assert list(reply.rows) == rows
        assert reply.table == table

    def test_sweep_matches_sweep_p(self):
        request = SweepRequest(
            algorithms=("det-par",), p_values=(2, 4), miss_cost=8, seeds=(0,), workload_seed=7
        )
        with Session() as session:
            reply = session.sweep(request)
        direct = sweep_p(
            ["det-par"], [2, 4], miss_cost=8, seeds=[0], workload_seed=7, include_impact_lb=True
        )
        assert list(reply.rows) == direct.as_dicts()


class TestSessionTraces:
    def _upload(self, session, name="uploaded"):
        rng = np.random.default_rng(0)
        text = "\n".join(str(int(a)) for a in rng.integers(0, 4096 * 32, size=200)) + "\n"
        return session.upload_trace(TraceUpload(name=name, text=text, fmt="address", page_size=4096))

    def test_upload_then_run_by_name(self, tmp_path):
        with Session(registry=str(tmp_path / "corpus")) as session:
            info = self._upload(session)
            assert info.name == "uploaded" and info.requests == 200 and info.p == 1
            reply = session.run(
                RunRequest(algorithms=("global-lru",), cache_size=16, miss_cost=4, seeds=(0,), trace="uploaded")
            )
        assert reply.rows and reply.rows[0]["algorithm"] == "global-lru"

    def test_unknown_trace_is_not_found(self, tmp_path):
        with Session(registry=str(tmp_path / "corpus")) as session:
            with pytest.raises(ServiceError) as exc:
                session.run(
                    RunRequest(algorithms=("det-par",), cache_size=16, miss_cost=4, trace="ghost")
                )
        assert exc.value.code == "not-found"
        assert exc.value.status == 404

    def test_bad_trace_text_is_bad_request(self, tmp_path):
        with Session(registry=str(tmp_path / "corpus")) as session:
            with pytest.raises(ServiceError) as exc:
                session.upload_trace(TraceUpload(name="neg", text="-5\n", fmt="address"))
        assert exc.value.code == "bad-request"


def test_open_session_picks_the_right_world():
    local = open_session(None)
    assert isinstance(local, Session)
    remote = open_session("http://127.0.0.1:1/")
    assert isinstance(remote, HttpSession)
    assert remote.base_url == "http://127.0.0.1:1"


def test_http_session_unreachable_is_a_typed_error():
    session = HttpSession("http://127.0.0.1:9", timeout=0.5)
    with pytest.raises(ServiceError) as exc:
        session.health()
    assert exc.value.code == "unavailable"


def test_experiment_accepts_request_objects_too():
    with Session() as session:
        by_name = session.experiment("e1")
        by_request = session.experiment(ExperimentRequest(name="e1"))
    assert by_name.rows == by_request.rows
