"""Cross-check properties: counters must equal the ground-truth accounting.

Every counter the obs layer emits is redundant with some first-class
result object (:class:`ProfileRun`, :class:`ParallelRunResult`, a cache's
own tallies).  These hypothesis properties pin the two books together, so
an instrumentation bug cannot silently drift from the simulation truth.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.green.impact import profile_impact
from repro.obs import metrics as M
from repro.paging.engine import execute_profile
from repro.paging.fifo import FIFOCache
from repro.paging.lru import LRUCache
from repro.paging.policies import count_faults
from repro.core.rand_par import RandPar
from repro.parallel.schedulers import RunSpec, make_algorithm, observe_pager
from repro.parallel.timestep import GlobalLRU
from repro.workloads.generators import make_parallel_workload

sequences = st.lists(st.integers(min_value=0, max_value=12), min_size=1, max_size=200)


@given(seq=sequences, heights=st.lists(st.sampled_from([1, 2, 4, 8]), min_size=1, max_size=8))
@settings(max_examples=40)
def test_profile_counters_match_profile_run(seq, heights):
    arr = np.asarray(seq, dtype=np.int64)
    with M.collecting() as reg:
        pr = execute_profile(arr, iter(heights * 200), miss_cost=4)
    snap = reg.snapshot()["counters"]
    if not pr.runs:
        assert reg.is_empty()
        return
    assert snap["sim.paging.faults"] == sum(r.faults for r in pr.runs)
    assert snap["sim.paging.hits"] == sum(r.hits for r in pr.runs)
    assert snap["sim.paging.boxes"] == len(pr.runs)
    assert snap["sim.paging.wall_time"] == pr.wall_time
    assert snap["sim.paging.stall_time"] == sum(r.stalled for r in pr.runs)


@given(seq=sequences, heights=st.lists(st.sampled_from([1, 2, 4, 8]), min_size=1, max_size=8))
@settings(max_examples=40)
def test_green_impact_counter_matches_impact_module(seq, heights):
    arr = np.asarray(seq, dtype=np.int64)
    with M.collecting() as reg:
        pr = execute_profile(arr, iter(heights * 200), miss_cost=4)
    if not pr.runs:
        return
    counted = reg.snapshot()["counters"]["sim.green.impact"]
    assert counted == pr.impact
    assert counted == profile_impact([r.height for r in pr.runs], 4)


@pytest.mark.parametrize("cache_cls", [LRUCache, FIFOCache])
@given(seq=sequences, capacity=st.integers(min_value=1, max_value=6))
@settings(max_examples=30)
def test_policy_counters_match_cache_tallies(cache_cls, seq, capacity):
    cache = cache_cls(capacity)
    with M.collecting() as reg:
        faults = count_faults(cache, seq)
    snap = reg.snapshot()["counters"]
    name = cache_cls.__name__
    assert snap[f"sim.policy.faults{{policy={name}}}"] == faults == cache.faults
    assert snap[f"sim.policy.hits{{policy={name}}}"] == cache.hits
    assert snap[f"sim.policy.requests{{policy={name}}}"] == len(seq)
    assert snap[f"sim.policy.evictions{{policy={name}}}"] == cache.evictions


@given(seq=sequences, capacity=st.integers(min_value=1, max_value=6))
@settings(max_examples=30)
def test_policy_eviction_fallback_matches_size_delta(seq, capacity):
    """A policy without an ``evictions`` attribute gets the computed delta."""

    class BareLRU:
        """LRU facade hiding the eviction tally (exercises the fallback)."""

        def __init__(self, cap):
            self._inner = LRUCache(cap)
            self.capacity = cap

        def touch(self, page):
            return self._inner.touch(page)

        def __contains__(self, page):
            return page in self._inner

        def __len__(self):
            return len(self._inner)

        def clear(self):
            self._inner.clear()

    bare = BareLRU(capacity)
    with M.collecting() as reg:
        count_faults(bare, seq)
    snap = reg.snapshot()["counters"]
    assert snap["sim.policy.evictions{policy=BareLRU}"] == bare._inner.evictions


@given(seed=st.integers(min_value=0, max_value=50), p=st.sampled_from([2, 4]))
@settings(max_examples=15, deadline=None)
def test_timestep_counters_match_result_meta(seed, p):
    wl = make_parallel_workload(p, 120, 8, np.random.default_rng(seed), kind="cyclic")
    with M.collecting() as reg:
        result = GlobalLRU(cache_size=8, miss_cost=3).run(wl)
    snap = reg.snapshot()
    assert snap["counters"]["sim.timestep.hits"] == result.meta["hits"]
    assert snap["counters"]["sim.timestep.faults"] == result.meta["faults"]
    assert snap["gauges"]["sim.timestep.makespan"] == result.makespan
    for proc in range(p):
        assert snap["counters"][f"sim.timestep.served{{proc={proc}}}"] == len(wl.sequences[proc])


@pytest.mark.parametrize("algorithm", ["det-par", "rand-par"])
def test_parallel_counters_match_run_result(algorithm):
    wl = make_parallel_workload(2, 200, 8, np.random.default_rng(3), kind="mixed")
    spec = RunSpec(algorithm=algorithm, cache_size=16, miss_cost=3, seed=1)
    with M.collecting() as reg:
        result = make_algorithm(spec).run(wl)
    snap = reg.snapshot()
    boxes = sum(
        v for k, v in snap["counters"].items() if k.startswith("sim.parallel.boxes{")
    )
    assert boxes == len(result.trace)
    assert snap["counters"][f"sim.parallel.impact{{algorithm={algorithm}}}"] == result.total_impact()
    assert snap["gauges"][f"sim.parallel.makespan{{algorithm={algorithm}}}"] == result.makespan
    served = sum(
        v for k, v in snap["counters"].items() if k.startswith("sim.parallel.served{")
    )
    assert served == sum(r.served for r in result.trace)
    hist = snap["histograms"][f"sim.parallel.box_height{{algorithm={algorithm}}}"]
    assert hist["count"] == len(result.trace)


def test_observe_pager_wraps_direct_constructions():
    """Hand-built pagers (the e2/e4/e7 style) record via observe_pager."""
    wl = make_parallel_workload(2, 150, 8, np.random.default_rng(5), kind="cyclic")
    pager = RandPar(16, 3, np.random.default_rng(0))
    assert observe_pager(pager) is pager  # no scope active: unchanged
    with M.collecting() as reg:
        observed = observe_pager(RandPar(16, 3, np.random.default_rng(0)))
        assert observed is not pager and observed.name == "rand-par"
        result = observed.run(wl, max_chunks=50)  # kwargs pass through
    counters = reg.snapshot()["counters"]
    assert counters["sim.parallel.impact{algorithm=rand-par}"] == result.total_impact()
