"""CLI observability surface: --metrics, --trace-events, repro profile."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.metrics import strip_wall
from repro.obs.tracing import canonical_events


def args_for(tmp_path, *extra):
    return [
        "--no-checkpoint",
        "--cache-dir", str(tmp_path / "cache"),
        *extra,
    ]


def test_metrics_flag_writes_snapshot(tmp_path, capsys):
    path = tmp_path / "m.json"
    rc = main(["e1", "--metrics", str(path), *args_for(tmp_path)])
    assert rc == 0
    snap = json.loads(path.read_text())
    assert snap["schema_version"] >= 1
    assert snap["counters"]["exec.cells"] > 0
    assert any(k.startswith("sim.") for k in snap["counters"])
    # the report text carries the metrics delta block
    assert "[metrics]" in capsys.readouterr().out


def test_trace_events_flag_writes_chrome_trace(tmp_path):
    path = tmp_path / "t.trace.json"
    rc = main(["e1", "--trace-events", str(path), *args_for(tmp_path)])
    assert rc == 0
    doc = json.loads(path.read_text())
    assert doc["displayTimeUnit"] == "ms"
    names = {e["name"] for e in doc["traceEvents"]}
    assert "exec.batch" in names
    assert any(n == "exec.unit" for n in names)


def test_run_synonym_accepts_obs_flags(tmp_path):
    path = tmp_path / "m.json"
    rc = main(["run", "e1", "--metrics", str(path), *args_for(tmp_path)])
    assert rc == 0
    assert path.exists()


def test_no_obs_flags_means_no_ambient_collection(tmp_path, capsys):
    rc = main(["e1", *args_for(tmp_path)])
    assert rc == 0
    assert "[metrics]" not in capsys.readouterr().out


def test_serial_vs_jobs_metrics_identical_at_cli_level(tmp_path):
    serial, pooled = tmp_path / "serial.json", tmp_path / "pooled.json"
    assert main(["e1", "--metrics", str(serial),
                 *args_for(tmp_path / "a", "--no-cache")]) == 0
    assert main(["e1", "--jobs", "2", "--metrics", str(pooled),
                 *args_for(tmp_path / "b", "--no-cache")]) == 0
    a = strip_wall(json.loads(serial.read_text()))
    b = strip_wall(json.loads(pooled.read_text()))
    assert a == b


def test_serial_vs_jobs_traces_identical_at_cli_level(tmp_path):
    serial, pooled = tmp_path / "serial.trace.json", tmp_path / "pooled.trace.json"
    assert main(["e1", "--trace-events", str(serial),
                 *args_for(tmp_path / "a", "--no-cache")]) == 0
    assert main(["e1", "--jobs", "2", "--trace-events", str(pooled),
                 *args_for(tmp_path / "b", "--no-cache")]) == 0
    a = json.loads(serial.read_text())["traceEvents"]
    b = json.loads(pooled.read_text())["traceEvents"]
    assert canonical_events(a) == canonical_events(b)


def test_profile_command_prints_span_tables(tmp_path, capsys):
    rc = main(["profile", "e1", "--top", "5", *args_for(tmp_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "e1: time by span" in out
    assert "e1: slowest individual spans" in out
    assert "e1: top counters" in out
    assert "exec.unit" in out
    assert "trace events)" in out


def test_profile_writes_requested_files(tmp_path, capsys):
    m, t = tmp_path / "m.json", tmp_path / "t.json"
    rc = main(["profile", "e1", "--metrics", str(m), "--trace-events", str(t),
               *args_for(tmp_path)])
    assert rc == 0
    assert json.loads(m.read_text())["counters"]
    assert json.loads(t.read_text())["traceEvents"]


def test_profile_unknown_experiment_errors(tmp_path, capsys):
    rc = main(["profile", "nope", *args_for(tmp_path)])
    assert rc == 2
    assert "pick an experiment" in capsys.readouterr().err


def test_profile_requires_an_argument(tmp_path, capsys):
    rc = main(["profile", *args_for(tmp_path)])
    assert rc == 2


def test_positional_arg_rejected_for_plain_experiments(capsys):
    with pytest.raises(SystemExit):
        main(["e1", "extra"])
