"""Determinism suite: byte-identical obs output across runs, workers, caches.

The load-bearing claims of the observability layer:

* two identical runs produce **byte-identical** metrics JSON and
  canonical trace events;
* serial and ``jobs=4`` execution produce identical metrics (after
  :func:`strip_wall`) and identical canonical traces;
* a warm-cache run replays the exact ``sim.*`` metrics of the run that
  filled the cache.

The golden files under ``tests/obs/golden/`` pin the exact rendering;
regenerate with ``REPRO_UPDATE_GOLDENS=1 pytest tests/obs``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.exec import ExecutionEngine, ResultCache, WorkUnit
from repro.obs import observability
from repro.obs.metrics import snapshot_to_json, strip_wall
from repro.obs.tracing import canonical_events
from repro.workloads import cyclic
from repro.workloads.generators import make_parallel_workload

GOLDEN_DIR = Path(__file__).parent / "golden"


def _units():
    """A small fixed workload touching every instrumented subsystem."""
    wl = make_parallel_workload(2, 240, 8, np.random.default_rng(7), kind="cyclic")
    seq = cyclic(120, 6)
    units = [
        WorkUnit(
            "parallel-run",
            {"workload": wl, "algorithm": name, "cache_size": 16, "miss_cost": 3, "seed": 0},
            label=f"det/{name}",
        )
        for name in ("det-par", "rand-par", "global-lru")
    ]
    units += [
        WorkUnit(
            "rand-green",
            {"seq": seq, "k": 8, "p": 2, "miss_cost": 4, "entropy": 17, "spawn_key": (i,)},
            label=f"det/rand-green/{i}",
        )
        for i in range(2)
    ]
    units.append(
        WorkUnit("green-opt", {"seq": seq, "k": 8, "p": 2, "miss_cost": 4}, label="det/opt")
    )
    return units


def _run(jobs=1, cache=None):
    """One observed engine pass; returns (stripped snapshot, events)."""
    with observability(metrics=True, trace=True) as scope:
        ExecutionEngine(jobs=jobs, cache=cache).run(_units())
        return strip_wall(scope.metrics_snapshot()), list(scope.tracer.events)


def _check_golden(name: str, text: str) -> None:
    """Compare against (or regenerate) a golden file."""
    path = GOLDEN_DIR / name
    if os.environ.get("REPRO_UPDATE_GOLDENS"):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        return
    assert path.exists(), (
        f"golden file {path} missing; regenerate with REPRO_UPDATE_GOLDENS=1 pytest tests/obs"
    )
    assert text == path.read_text(), (
        f"output diverged from {path.name}; if the change is intended, "
        "regenerate with REPRO_UPDATE_GOLDENS=1 pytest tests/obs"
    )


def test_two_runs_byte_identical():
    snap_a, events_a = _run()
    snap_b, events_b = _run()
    assert snapshot_to_json(snap_a) == snapshot_to_json(snap_b)
    assert canonical_events(events_a) == canonical_events(events_b)


def test_metrics_golden():
    snap, _ = _run()
    _check_golden("engine_small.metrics.json", snapshot_to_json(snap))


def test_canonical_trace_golden():
    _, events = _run()
    text = json.dumps(canonical_events(events), sort_keys=True, indent=2) + "\n"
    _check_golden("engine_small.trace.json", text)


def test_serial_vs_jobs4_identical():
    snap_serial, events_serial = _run(jobs=1)
    snap_pooled, events_pooled = _run(jobs=4)
    assert snap_serial == snap_pooled
    assert canonical_events(events_serial) == canonical_events(events_pooled)


def test_warm_cache_replays_sim_metrics(tmp_path):
    cache = ResultCache(tmp_path / "c")
    cold, _ = _run(cache=cache)
    warm, _ = _run(cache=cache)
    # sim.* replays exactly; exec.* legitimately differs (hits vs computes)
    sim_cold = {k: v for k, v in cold["counters"].items() if k.startswith("sim.")}
    sim_warm = {k: v for k, v in warm["counters"].items() if k.startswith("sim.")}
    assert sim_cold == sim_warm
    assert cold["histograms"] == warm["histograms"]
    assert warm["counters"]["exec.cache.hits"] == len(_units())
    assert "exec.computed" not in warm["counters"]


def test_pooled_warm_cache_matches_serial_cold(tmp_path):
    cache = ResultCache(tmp_path / "c")
    cold, _ = _run(jobs=1, cache=cache)
    warm_pooled, _ = _run(jobs=4, cache=cache)
    sim = lambda s: {k: v for k, v in s["counters"].items() if k.startswith("sim.")}  # noqa: E731
    assert sim(cold) == sim(warm_pooled)


def test_disabled_obs_attaches_no_deltas():
    outcomes = ExecutionEngine(jobs=1).run(_units()[:1])
    assert outcomes  # ran clean with obs off; nothing ambient recorded
    from repro.obs import metrics as M

    assert M.active().is_empty()
