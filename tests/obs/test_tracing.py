"""Unit tests for span tracing: events, canonicalization, aggregation."""

from __future__ import annotations

import json

from repro.obs import tracing as T
from repro.obs.tracing import (
    Tracer,
    aggregate_spans,
    canonical_events,
    slowest_spans,
    write_chrome_trace,
)


def test_span_records_complete_event():
    tracer = Tracer()
    with tracer.span("work", label="a"):
        pass
    (event,) = tracer.events
    assert event["name"] == "work" and event["ph"] == "X"
    assert event["args"] == {"label": "a"}
    assert event["dur"] >= 0 and "ts" in event


def test_span_records_even_when_body_raises():
    tracer = Tracer()
    try:
        with tracer.span("boom"):
            raise RuntimeError("x")
    except RuntimeError:
        pass
    assert [e["name"] for e in tracer.events] == ["boom"]


def test_instant_and_complete():
    tracer = Tracer()
    tracer.instant("mark", kind="k")
    tracer.complete("past", 0.5, label="l")
    instants = [e for e in tracer.events if e["ph"] == "i"]
    completes = [e for e in tracer.events if e["ph"] == "X"]
    assert len(instants) == 1 and len(completes) == 1
    assert completes[0]["dur"] == 500000.0


def test_disabled_tracer_records_nothing():
    tracer = Tracer(enabled=False)
    with tracer.span("x"):
        tracer.instant("y")
        tracer.complete("z", 1.0)
    assert tracer.events == []


def test_canonical_events_strips_wall_fields_and_sorts():
    a = Tracer()
    b = Tracer()
    with a.span("s1", i=1):
        pass
    a.instant("m")
    b.instant("m")  # opposite order, different timestamps
    with b.span("s1", i=1):
        pass
    assert canonical_events(a.events) == canonical_events(b.events)
    for event in canonical_events(a.events):
        assert not set(event) & {"ts", "dur", "pid", "tid"}


def test_aggregate_spans_orders_by_total():
    tracer = Tracer()
    tracer.complete("small", 0.001)
    tracer.complete("big", 0.5)
    tracer.complete("big", 0.25)
    rows = aggregate_spans(tracer.events)
    assert [r["span"] for r in rows] == ["big", "small"]
    assert rows[0]["count"] == 2
    assert rows[0]["total_ms"] == 750.0


def test_slowest_spans_keeps_args_detail():
    tracer = Tracer()
    tracer.complete("unit", 0.2, label="e1/opt/p=16", kind="green-opt")
    tracer.complete("unit", 0.1, label="e1/opt/p=4", kind="green-opt")
    rows = slowest_spans(tracer.events, n=1)
    assert len(rows) == 1
    assert rows[0]["dur_ms"] == 200.0
    assert "label=e1/opt/p=16" in rows[0]["detail"]


def test_write_chrome_trace_envelope(tmp_path):
    tracer = Tracer()
    with tracer.span("s"):
        pass
    path = tmp_path / "sub" / "trace.json"
    tracer.write_chrome(path)  # creates parent dirs
    doc = json.loads(path.read_text())
    assert doc["displayTimeUnit"] == "ms"
    assert doc["otherData"]["schema_version"] == T.TRACE_SCHEMA_VERSION
    assert len(doc["traceEvents"]) == 1
    # the standalone writer produces the same envelope
    write_chrome_trace(tracer.events, tmp_path / "t2.json")
    doc2 = json.loads((tmp_path / "t2.json").read_text())
    assert doc2["traceEvents"] == doc["traceEvents"]


def test_ambient_tracer_stack():
    assert not T.enabled()
    with T.span("noop"):  # shared null span: records nowhere
        pass
    with T.collecting() as tracer:
        assert T.enabled()
        with T.span("inside", x=1):
            T.instant("mark")
        assert [e["name"] for e in tracer.events] == ["mark", "inside"]
    assert not T.enabled()
