"""Chaos tests for the obs layer: metrics under faults, failures, resume.

The claims: a retried cell contributes its simulation metrics exactly
once (the failed attempts' scoped registries are discarded with the
raise); a cell that exhausts its retries under ``keep_going`` shows up in
``exec.failed_cells`` without polluting ``sim.*``; and a run interrupted
mid-sweep then resumed reports the same ``sim.*`` totals as one that was
never interrupted.
"""

from __future__ import annotations

import contextlib
import json

import pytest

from repro.cli import main
from repro.exec import ExecutionEngine, ExecutionPolicy, FailedCell, WorkUnit, inject_faults
from repro.obs import metrics as M
from repro.obs.metrics import strip_wall
from repro.workloads import cyclic

pytestmark = pytest.mark.chaos


def green_units(n=4, tag="chaos"):
    seq = cyclic(100, 6)
    return [
        WorkUnit(
            "rand-green",
            {"seq": seq, "k": 8, "p": 2, "miss_cost": 4, "entropy": 17, "spawn_key": (i,)},
            label=f"{tag}/u{i}",
        )
        for i in range(n)
    ]


def observed_run(units, policy=None, faults=None, jobs=1):
    ctx = inject_faults(faults) if faults else contextlib.nullcontext()
    with ctx, M.collecting() as reg:
        outcomes = ExecutionEngine(jobs=jobs, policy=policy).run(units)
    return strip_wall(reg.snapshot()), outcomes


def sim_counters(snap):
    return {k: v for k, v in snap["counters"].items() if k.startswith("sim.")}


# --------------------------------------------------------------------- #
# retries
# --------------------------------------------------------------------- #
def test_retried_cell_counts_sim_metrics_once():
    clean, _ = observed_run(green_units())
    policy = ExecutionPolicy(retries=2, backoff_s=0.01)
    flaky, _ = observed_run(green_units(), policy=policy, faults="flaky:chaos/u1:2")
    # the two failed attempts ran inside scoped registries that were
    # discarded with the raise: simulation totals are untouched
    assert sim_counters(flaky) == sim_counters(clean)
    assert flaky["histograms"] == clean["histograms"]
    assert flaky["counters"]["exec.retries"] == 2
    assert flaky["counters"]["exec.computed"] == clean["counters"]["exec.computed"]
    assert "exec.retries" not in clean["counters"]


@pytest.mark.parametrize("jobs", [1, 2])
def test_retried_cell_counts_once_in_pool_too(jobs):
    clean, _ = observed_run(green_units())
    policy = ExecutionPolicy(retries=1, backoff_s=0.01)
    flaky, _ = observed_run(green_units(), policy=policy, faults="flaky:chaos/u2:1", jobs=jobs)
    assert sim_counters(flaky) == sim_counters(clean)
    assert flaky["counters"]["exec.retries"] == 1


# --------------------------------------------------------------------- #
# exhausted cells under keep_going
# --------------------------------------------------------------------- #
def test_failed_cell_counted_and_excluded_from_sim():
    clean, _ = observed_run(green_units())
    policy = ExecutionPolicy(retries=0, keep_going=True)
    snap, outcomes = observed_run(green_units(), policy=policy, faults="crash:chaos/u1:0")
    assert sum(isinstance(o, FailedCell) for o in outcomes) == 1
    assert snap["counters"]["exec.failed_cells"] == 1
    assert snap["counters"]["exec.cells"] == len(green_units())
    assert snap["counters"]["exec.computed"] == len(green_units()) - 1
    # the dead cell contributed nothing to simulation accounting: no sim
    # counter exceeds the clean run, and per-box totals are strictly lower
    for key, value in sim_counters(snap).items():
        assert value <= sim_counters(clean)[key], key
    assert snap["counters"]["sim.paging.boxes"] < clean["counters"]["sim.paging.boxes"]
    assert snap["counters"]["sim.green.impact"] < clean["counters"]["sim.green.impact"]


# --------------------------------------------------------------------- #
# interrupt + resume
# --------------------------------------------------------------------- #
def test_resume_metrics_equal_uninterrupted_run(tmp_path, capsys):
    def args_for(root, *extra):
        return [
            "--cache-dir", str(root / "cache"),
            "--runs-dir", str(root / "runs"),
            *extra,
        ]

    clean_dir = tmp_path / "clean"
    rc = main(["e1", "--metrics", str(clean_dir / "m.json"),
               "--out", str(clean_dir / "e1.md"), *args_for(clean_dir)])
    assert rc == 0
    capsys.readouterr()

    # interrupt mid-sweep; the metrics path rides in the stored manifest
    work = tmp_path / "work"
    with inject_faults("interrupt:e1/rand-green:1"):
        rc = main(["e1", "--run-id", "obs-resume", "--metrics", str(work / "m.json"),
                   "--out", str(work / "e1.md"), *args_for(work)])
    assert rc == 130
    capsys.readouterr()

    rc = main(["resume", "obs-resume", "--runs-dir", str(work / "runs")])
    assert rc == 0
    capsys.readouterr()

    clean = strip_wall(json.loads((clean_dir / "m.json").read_text()))
    resumed = strip_wall(json.loads((work / "m.json").read_text()))
    # journaled cells replay their sim.* deltas as cache hits, so the
    # resumed run's simulation totals match a run that never died
    assert sim_counters(resumed) == sim_counters(clean)
    assert resumed["histograms"] == clean["histograms"]
    assert resumed["counters"]["exec.cells"] == clean["counters"]["exec.cells"]
    assert resumed["counters"]["exec.cache.hits"] > 0
