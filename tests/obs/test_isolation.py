"""Regression tests: process-global state must not leak across test cases.

The bug: ``repro.exec.TELEMETRY`` is a process-global append-only list,
so one test's cell records used to bleed into the next test's
``summary()`` (and a leaked ambient obs registry would silently collect
metrics for every subsequent test).  The autouse ``_pristine_observability``
fixture in ``tests/conftest.py`` now resets both around every test;
these cases would fail without it.

The two ``*_pollutes_*`` tests are an order-independent pair: whichever
runs second proves the first one's garbage was swept.
"""

from __future__ import annotations

from repro.exec import ExecutionEngine, WorkUnit
from repro.exec.telemetry import TELEMETRY
from repro.obs import metrics as M
from repro.obs import tracing as T
from repro.workloads import cyclic


def _one_unit(tag):
    return [
        WorkUnit(
            "rand-green",
            {"seq": cyclic(60, 4), "k": 8, "p": 2, "miss_cost": 3, "entropy": 1, "spawn_key": (0,)},
            label=f"{tag}/u0",
        )
    ]


def test_global_telemetry_pollutes_a():
    assert len(TELEMETRY) == 0, "TELEMETRY leaked in from a previous test"
    ExecutionEngine(jobs=1).run(_one_unit("iso-a"))
    assert len(TELEMETRY) == 1  # deliberately left dirty for the fixture


def test_global_telemetry_pollutes_b():
    assert len(TELEMETRY) == 0, "TELEMETRY leaked in from a previous test"
    ExecutionEngine(jobs=1).run(_one_unit("iso-b"))
    assert TELEMETRY.summary()["cells"] == 1
    assert TELEMETRY.records[0].label == "iso-b/u0"


def test_ambient_obs_stack_is_pristine():
    assert not M.enabled() and not T.enabled()
    assert M.active().is_empty()
    assert T.active().events == []


def test_leaked_collecting_scope_is_swept():
    # enter scopes and never exit: the fixture must tear them down so the
    # next test (above, in either order) still sees a disabled stack
    M._STACK.append(M.MetricsRegistry())
    T._STACK.append(T.Tracer())
    assert M.enabled() and T.enabled()
