"""Tests for the observability layer (metrics, tracing, determinism)."""
