"""Unit tests for the metrics registry: cells, snapshots, merge algebra."""

from __future__ import annotations

import json

import pytest

from repro.obs import metrics as M
from repro.obs.metrics import (
    DEFAULT_BUCKET_EDGES,
    NULL_METRIC,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    snapshot_to_json,
    strip_wall,
)


# --------------------------------------------------------------------- #
# cells
# --------------------------------------------------------------------- #
def test_counter_inc():
    c = Counter()
    c.inc()
    c.inc(5)
    assert c.value == 6


def test_gauge_set_and_record_max():
    g = Gauge()
    g.set(7)
    g.record_max(3)  # lower: ignored
    assert g.value == 7
    g.record_max(11)
    assert g.value == 11


def test_histogram_bucketing():
    h = Histogram(edges=[1.0, 2.0, 4.0])
    for v in (0.5, 1.0, 1.5, 4.0, 100.0):
        h.observe(v)
    # <=1 | <=2 | <=4 | overflow
    assert h.counts == [2, 1, 1, 1]
    assert h.count == 5
    assert h.sum == pytest.approx(107.0)


def test_histogram_rejects_bad_edges():
    with pytest.raises(ValueError):
        Histogram(edges=[])
    with pytest.raises(ValueError):
        Histogram(edges=[2.0, 1.0])


def test_default_edges_are_powers_of_two():
    assert DEFAULT_BUCKET_EDGES[0] == 1.0
    assert DEFAULT_BUCKET_EDGES[-1] == float(1 << 20)


# --------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------- #
def test_disabled_registry_hands_out_null_metric():
    reg = MetricsRegistry(enabled=False)
    assert reg.counter("x") is NULL_METRIC
    assert reg.gauge("x") is NULL_METRIC
    assert reg.histogram("x") is NULL_METRIC
    # null metric swallows everything
    NULL_METRIC.inc()
    NULL_METRIC.set(3)
    NULL_METRIC.record_max(3)
    NULL_METRIC.observe(3)
    assert reg.is_empty()


def test_labels_canonicalize_sorted():
    reg = MetricsRegistry()
    a = reg.counter("sim.x", b=2, a=1)
    b = reg.counter("sim.x", a=1, b=2)
    assert a is b
    assert list(reg.snapshot()["counters"]) == ["sim.x{a=1,b=2}"]


def test_histogram_edge_mismatch_rejected():
    reg = MetricsRegistry()
    reg.histogram("h", edges=[1.0, 2.0])
    with pytest.raises(ValueError, match="different edges"):
        reg.histogram("h", edges=[1.0, 3.0])


def test_snapshot_is_sorted_and_integral():
    reg = MetricsRegistry()
    reg.counter("b").inc(2.0)  # integral float -> int in snapshot
    reg.counter("a").inc()
    reg.gauge("g").set(1.5)
    snap = reg.snapshot()
    assert list(snap["counters"]) == ["a", "b"]
    assert snap["counters"]["b"] == 2 and isinstance(snap["counters"]["b"], int)
    assert snap["gauges"]["g"] == 1.5


def test_merge_is_commutative():
    def make(x, y):
        reg = MetricsRegistry()
        reg.counter("c").inc(x)
        reg.gauge("g").record_max(y)
        reg.histogram("h", edges=[1.0, 2.0]).observe(y)
        return reg.snapshot()

    a, b = make(3, 10), make(4, 2)
    ab = MetricsRegistry()
    ab.merge(a)
    ab.merge(b)
    ba = MetricsRegistry()
    ba.merge(b)
    ba.merge(a)
    assert ab.snapshot() == ba.snapshot()
    assert ab.snapshot()["counters"]["c"] == 7
    assert ab.snapshot()["gauges"]["g"] == 10


def test_merge_histogram_edge_mismatch_rejected():
    reg = MetricsRegistry()
    reg.histogram("h", edges=[1.0])
    donor = MetricsRegistry()
    donor.histogram("h", edges=[2.0]).observe(1)
    with pytest.raises(ValueError, match="edge mismatch"):
        reg.merge(donor.snapshot())


def test_merge_none_is_noop():
    reg = MetricsRegistry()
    reg.merge(None)
    reg.merge({})
    assert reg.is_empty()


# --------------------------------------------------------------------- #
# snapshot utilities
# --------------------------------------------------------------------- #
def test_strip_wall_removes_wall_prefix():
    reg = MetricsRegistry()
    reg.counter("sim.a").inc()
    reg.counter("wall.b").inc()
    snap = strip_wall(reg.snapshot())
    assert "sim.a" in snap["counters"] and "wall.b" not in snap["counters"]


def test_diff_snapshots_drops_zero_deltas():
    reg = MetricsRegistry()
    reg.counter("x").inc(5)
    before = reg.snapshot()
    reg.counter("x").inc(0)
    reg.counter("y").inc(2)
    delta = diff_snapshots(before, reg.snapshot())
    assert delta["counters"] == {"y": 2}


def test_snapshot_to_json_is_canonical():
    reg = MetricsRegistry()
    reg.counter("z").inc()
    reg.counter("a").inc()
    text = snapshot_to_json(reg.snapshot())
    assert text == snapshot_to_json(json.loads(text)) or json.loads(text)["counters"] == {"a": 1, "z": 1}
    assert text.endswith("\n")
    assert text.index('"a"') < text.index('"z"')


# --------------------------------------------------------------------- #
# ambient stack
# --------------------------------------------------------------------- #
def test_ambient_stack_default_disabled():
    assert not M.enabled()
    M.counter("x").inc()  # goes to the disabled base: no-op
    assert M.active().is_empty()


def test_collecting_scopes_and_restores():
    with M.collecting() as reg:
        assert M.enabled()
        M.counter("inside").inc()
        assert reg.snapshot()["counters"] == {"inside": 1}
    assert not M.enabled()


def test_collecting_nests():
    with M.collecting() as outer:
        M.counter("o").inc()
        with M.collecting() as inner:
            M.counter("i").inc()
        assert "i" not in outer.snapshot()["counters"]
        assert inner.snapshot()["counters"] == {"i": 1}
