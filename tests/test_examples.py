"""Smoke tests: every example script must run cleanly end to end.

Examples are documentation that executes; these tests keep them honest as
the library evolves.  Each runs in a subprocess exactly as a user would.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {p.name for p in SCRIPTS}
    assert "quickstart.py" in names
    assert len(SCRIPTS) >= 5


@pytest.mark.slow
@pytest.mark.parametrize("script", SCRIPTS, ids=lambda p: p.name)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, f"{script.name} failed:\n{proc.stderr[-2000:]}"
    assert proc.stdout.strip(), f"{script.name} produced no output"


@pytest.mark.slow
def test_quickstart_mentions_ratio():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert "makespan_ratio" in proc.stdout
    assert "lower bound" in proc.stdout
