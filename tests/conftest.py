"""Shared pytest configuration: markers and deterministic hypothesis profile."""

import os
import tempfile

import pytest
from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    # function_scoped_fixture: the autouse _pristine_observability reset
    # fixture below is function-scoped by design (it guards *every* test
    # against leaked ambient obs/telemetry state); it is idempotent and
    # example-independent, so rerunning examples under one setup is fine.
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
    derandomize=True,
)
settings.load_profile("repro")


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: heavier end-to-end experiment tests")
    config.addinivalue_line("markers", "chaos: fault-injection tests of the execution engine")


@pytest.fixture(autouse=True)
def _pristine_observability():
    """Reset process-global observability and telemetry state per test.

    The ambient metrics/tracer stacks and the process-wide ``TELEMETRY``
    collector are module-level singletons; a test that fails mid-scope
    (or simply records cells) must not leak records into the next test's
    assertions.  Regression guard for the cross-test Telemetry leak.
    """
    from repro.exec.telemetry import TELEMETRY
    from repro.obs.runtime import reset_observability

    reset_observability()
    TELEMETRY.clear()
    yield
    reset_observability()
    TELEMETRY.clear()


@pytest.fixture(autouse=True, scope="session")
def _isolated_runs_dir():
    """Keep CLI run checkpoints out of the working tree during tests.

    Session-scoped (not per-test) so hypothesis's function-scoped-fixture
    health check stays quiet; individual tests that care about the runs
    dir pass ``--runs-dir`` or monkeypatch ``$REPRO_RUNS_DIR`` themselves.
    """
    old = os.environ.get("REPRO_RUNS_DIR")
    with tempfile.TemporaryDirectory(prefix="repro-test-runs-") as tmp:
        os.environ["REPRO_RUNS_DIR"] = tmp
        try:
            yield
        finally:
            if old is None:
                os.environ.pop("REPRO_RUNS_DIR", None)
            else:
                os.environ["REPRO_RUNS_DIR"] = old
