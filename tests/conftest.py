"""Shared pytest configuration: markers and deterministic hypothesis profile."""

import pytest
from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
)
settings.load_profile("repro")


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: heavier end-to-end experiment tests")
