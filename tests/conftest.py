"""Shared pytest configuration: markers and deterministic hypothesis profile."""

import os
import tempfile

import pytest
from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
)
settings.load_profile("repro")


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: heavier end-to-end experiment tests")
    config.addinivalue_line("markers", "chaos: fault-injection tests of the execution engine")


@pytest.fixture(autouse=True, scope="session")
def _isolated_runs_dir():
    """Keep CLI run checkpoints out of the working tree during tests.

    Session-scoped (not per-test) so hypothesis's function-scoped-fixture
    health check stays quiet; individual tests that care about the runs
    dir pass ``--runs-dir`` or monkeypatch ``$REPRO_RUNS_DIR`` themselves.
    """
    old = os.environ.get("REPRO_RUNS_DIR")
    with tempfile.TemporaryDirectory(prefix="repro-test-runs-") as tmp:
        os.environ["REPRO_RUNS_DIR"] = tmp
        try:
            yield
        finally:
            if old is None:
                os.environ.pop("REPRO_RUNS_DIR", None)
            else:
                os.environ["REPRO_RUNS_DIR"] = old
