"""End-to-end integration tests: the whole pipeline at once.

These are the "does the repository actually hang together" tests: full
experiment dispatch through the CLI, moderately sized simulations with
semantic replay, and cross-subsystem consistency.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.core import DetPar, audit_balance, audit_well_rounded
from repro.parallel import makespan_lower_bound, summarize, verify_trace
from repro.workloads import make_parallel_workload


@pytest.mark.slow
class TestStress:
    def test_det_par_p64_full_pipeline(self):
        """p=64: simulate, audit, replay, summarize — everything at once."""
        p, k, s = 64, 256, 16
        wl = make_parallel_workload(p=p, n_requests=300, k=k, rng=np.random.default_rng(7), kind="multiscale")
        res = DetPar(2 * k, s).run(wl)
        res.validate()
        assert verify_trace(res, wl).ok
        wr = audit_well_rounded(res)
        assert wr.base_covered
        assert wr.max_gap_factor <= 10.0
        bal = audit_balance(res)
        assert bal.min_reserved_fraction >= 0.25
        lb = makespan_lower_bound(wl, k, s, include_impact=False)
        row = summarize(res, makespan_lb=lb)
        assert row.makespan_ratio is not None
        assert row.makespan_ratio <= 6 * np.log2(p)

    def test_cli_all_quick_runs(self, tmp_path, capsys):
        rc = main(["all", "--out", str(tmp_path), "--csv", str(tmp_path)])
        assert rc == 0
        for i in range(1, 12):
            assert (tmp_path / f"e{i}.md").exists(), f"e{i} report missing"
            assert (tmp_path / f"e{i}.csv").exists(), f"e{i} csv missing"


class TestCrossSubsystemConsistency:
    def test_summary_utilization_consistent_with_ledger(self):
        from repro.parallel import capacity_profile

        wl = make_parallel_workload(p=4, n_requests=200, k=32, rng=np.random.default_rng(3))
        res = DetPar(64, 8).run(wl)
        row = summarize(res)
        times, heights = capacity_profile(res.trace)
        manual = float(np.dot(heights[:-1], np.diff(times))) / ((times[-1] - times[0]) * 64)
        assert row.utilization == pytest.approx(manual)

    def test_impact_accounting_agrees_across_views(self):
        wl = make_parallel_workload(p=4, n_requests=150, k=32, rng=np.random.default_rng(4))
        res = DetPar(64, 8).run(wl)
        assert res.total_impact() == int(res.impact_by_proc().sum())

    def test_det_par_truncation_only_at_phase_rebuilds(self):
        """Emergent alignment property of the Lemma 6 construction: within
        a phase every box duration is a power-of-two multiple of the base
        duration with a common origin, so strip "preemptions" land exactly
        at box expiries.  The ONLY source of truncated boxes is a phase
        rebuild (all running segments are finalized when the active count
        halves), so every short box must end exactly at a phase start."""
        any_truncated = False
        for seed in range(6):
            wl = make_parallel_workload(
                p=8, n_requests=200 + 37 * seed, k=32, rng=np.random.default_rng(seed), kind="mixed_kinds"
            )
            s = 8
            res = DetPar(64, s).run(wl)
            rebuild_times = set(res.meta["rebuild_times"])
            for r in res.trace:
                if r.duration != s * r.height:
                    any_truncated = True
                    assert r.end in rebuild_times, r
            assert verify_trace(res, wl).ok
        assert any_truncated, "expected at least one phase-rebuild truncation across seeds"
