"""Unit tests for tools/coverage_summary.py (stdlib cobertura renderer)."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

TOOLS = Path(__file__).resolve().parent.parent / "tools"
spec = importlib.util.spec_from_file_location("coverage_summary", TOOLS / "coverage_summary.py")
coverage_summary = importlib.util.module_from_spec(spec)
spec.loader.exec_module(coverage_summary)

COBERTURA = """<?xml version="1.0" ?>
<coverage line-rate="0.625">
  <packages><package name="repro">
    <classes>
      <class name="a.py" filename="src/repro/a.py">
        <lines>
          <line number="1" hits="3"/>
          <line number="2" hits="0"/>
          <line number="3" hits="1"/>
          <line number="4" hits="0"/>
        </lines>
      </class>
      <class name="b.py" filename="src/repro/b.py">
        <lines>
          <line number="1" hits="1"/>
          <line number="2" hits="1"/>
          <line number="3" hits="1"/>
          <line number="4" hits="1"/>
        </lines>
      </class>
    </classes>
  </package></packages>
</coverage>
"""


@pytest.fixture
def xml_path(tmp_path):
    path = tmp_path / "coverage.xml"
    path.write_text(COBERTURA)
    return path


def test_module_rates_counts_lines(xml_path):
    total, modules = coverage_summary.module_rates(xml_path)
    assert modules["src/repro/a.py"] == (2, 4)
    assert modules["src/repro/b.py"] == (4, 4)
    assert total == pytest.approx(6 / 8)


def test_duplicate_classes_merge_by_line(tmp_path):
    doubled = COBERTURA.replace(
        '<class name="b.py" filename="src/repro/b.py">',
        '<class name="a2.py" filename="src/repro/a.py">', 1,
    )
    path = tmp_path / "c.xml"
    path.write_text(doubled)
    _, modules = coverage_summary.module_rates(path)
    # same file twice: lines union, a hit anywhere counts
    assert modules["src/repro/a.py"] == (4, 4)


def test_render_summary_lists_lowest_first(xml_path):
    text = coverage_summary.render_summary(xml_path, lowest=1)
    assert "## Coverage: 75.0% line rate (2 modules)" in text
    assert "src/repro/a.py" in text and "src/repro/b.py" not in text
    assert "| src/repro/a.py | 2 | 4 | 50.0% |" in text


def test_main_prints_summary(xml_path, capsys):
    assert coverage_summary.main([str(xml_path)]) == 0
    out = capsys.readouterr().out
    assert out.startswith("## Coverage:")
    assert out.endswith("\n")


def test_main_missing_file_errors(tmp_path, capsys):
    assert coverage_summary.main([str(tmp_path / "nope.xml")]) == 2
    assert "not found" in capsys.readouterr().err
