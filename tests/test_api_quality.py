"""API-quality meta tests: docstrings, exports, and registry hygiene.

A library is adoptable only if its public surface is documented; these
tests make "doc comments on every public item" an enforced invariant, not
an aspiration.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.core",
    "repro.paging",
    "repro.green",
    "repro.parallel",
    "repro.workloads",
    "repro.analysis",
    "repro.exec",
    "repro.obs",
]


def _all_modules():
    out = []
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        out.append(pkg)
        if hasattr(pkg, "__path__"):
            for info in pkgutil.iter_modules(pkg.__path__):
                out.append(importlib.import_module(f"{pkg_name}.{info.name}"))
    out.append(importlib.import_module("repro.experiments"))
    out.append(importlib.import_module("repro.cli"))
    return out


MODULES = _all_modules()


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_items_documented(module):
    """Every public function/class defined in repro has a docstring, and
    every public method of every public class does too."""
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isfunction(obj) or inspect.isclass(obj)):
            continue
        if getattr(obj, "__module__", "").startswith("repro") is False:
            continue
        if obj.__module__ != module.__name__:
            continue  # re-export; checked at its home module
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(obj):
            for mname, meth in vars(obj).items():
                if mname.startswith("_") or not inspect.isfunction(meth):
                    continue
                if not (meth.__doc__ and meth.__doc__.strip()):
                    undocumented.append(f"{name}.{mname}")
    assert not undocumented, f"{module.__name__}: missing docstrings on {undocumented}"


def test_top_level_all_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_subpackage_all_resolves():
    for pkg_name in PACKAGES[1:]:
        pkg = importlib.import_module(pkg_name)
        for name in getattr(pkg, "__all__", []):
            assert hasattr(pkg, name), f"{pkg_name}.{name}"


def test_algorithm_registry_matches_docs():
    from repro.parallel import ALGORITHM_REGISTRY

    expected = {
        "rand-par",
        "det-par",
        "black-box-green",
        "equal-partition",
        "best-static-partition",
        "global-lru",
    }
    assert expected <= set(ALGORITHM_REGISTRY)


def test_policy_registry_contents():
    from repro.paging import POLICY_REGISTRY

    assert {"lru", "fifo", "marking", "clock", "lfu"} <= set(POLICY_REGISTRY)


def test_version_declared():
    assert repro.__version__
