"""Legacy shim: enables `python setup.py develop` in environments without
the `wheel` package (PEP 660 editable installs need it).  All real
metadata lives in pyproject.toml."""

from setuptools import setup

setup()
